// SelectionContext::reputation_penalty across all five models: exact
// zero-perturbation at weight 0 (a run without defenses ranks
// bit-identically whatever the reputation field holds), and a material
// penalty at the defended weight that sinks distrusted peers.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "peerlab/core/blind.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/hybrid.hpp"
#include "peerlab/core/user_preference.hpp"

namespace peerlab::core {
namespace {

PeerSnapshot peer(std::uint64_t id, double reputation = 1.0) {
  PeerSnapshot p;
  p.peer = PeerId(id);
  p.node = NodeId(id);
  p.cpu_ghz = 1.0;
  p.price_per_cpu_second = 1.0;
  p.idle = true;
  p.reputation = reputation;
  return p;
}

SelectionContext transfer_ctx(double weight = 0.0) {
  SelectionContext ctx;
  ctx.purpose = SelectionContext::Purpose::kFileTransfer;
  ctx.payload_size = megabytes(4.0);
  ctx.reputation_weight = weight;
  return ctx;
}

TEST(ReputationPenalty, PenaltyIsExactlyZeroAtWeightZero) {
  const SelectionContext ctx = transfer_ctx(0.0);
  EXPECT_EQ(ctx.reputation_penalty(peer(1, 0.0)), 0.0);
  EXPECT_EQ(ctx.reputation_penalty(peer(1, 0.5)), 0.0);
  const SelectionContext defended = transfer_ctx(2.0);
  EXPECT_DOUBLE_EQ(defended.reputation_penalty(peer(1, 1.0)), 0.0);
  EXPECT_DOUBLE_EQ(defended.reputation_penalty(peer(1, 0.25)), 1.5);
}

/// Every model: identical peers except one's reputation. At weight 0
/// the ranking must not depend on the reputation field at all; at the
/// defended weight the distrusted peer must sink to the bottom.
template <typename MakeModel>
void expect_weight_semantics(MakeModel make_model) {
  const std::vector<PeerSnapshot> trusted{peer(1), peer(2), peer(3)};
  const std::vector<PeerSnapshot> mixed{peer(1, 0.1), peer(2), peer(3)};

  {
    auto a = make_model();
    auto b = make_model();
    const auto baseline = a->rank(trusted, transfer_ctx(0.0));
    const auto undefended = b->rank(mixed, transfer_ctx(0.0));
    EXPECT_EQ(baseline, undefended);  // weight 0: reputation invisible
  }
  {
    auto m = make_model();
    const auto defended = m->rank(mixed, transfer_ctx(2.0));
    ASSERT_EQ(defended.size(), 3u);
    EXPECT_EQ(defended.back(), PeerId(1));  // distrusted peer sinks
  }
}

TEST(ReputationPenalty, EconomicSinksDistrustedPeers) {
  expect_weight_semantics([] { return std::make_unique<EconomicSchedulingModel>(); });
}

TEST(ReputationPenalty, DataEvaluatorSinksDistrustedPeers) {
  expect_weight_semantics(
      [] { return std::make_unique<DataEvaluatorModel>(DataEvaluatorModel::same_priority()); });
}

TEST(ReputationPenalty, HybridSinksDistrustedPeers) {
  expect_weight_semantics([] { return std::make_unique<HybridModel>(); });
}

TEST(ReputationPenalty, UserPreferenceSinksEvenTheFavourite) {
  // Peer 1 is the user's first choice, but reputation 0 at weight 1
  // (scaled by the candidate count inside the model) outweighs any
  // preference-rank gap.
  const std::vector<PeerId> order{PeerId(1), PeerId(2), PeerId(3)};
  {
    UserPreferenceModel m(order);
    const auto ranking =
        m.rank(std::vector<PeerSnapshot>{peer(1, 0.0), peer(2), peer(3)}, transfer_ctx(0.0));
    ASSERT_EQ(ranking.size(), 3u);
    EXPECT_EQ(ranking.front(), PeerId(1));  // weight 0: preference rules
  }
  {
    UserPreferenceModel m(order);
    const auto ranking =
        m.rank(std::vector<PeerSnapshot>{peer(1, 0.0), peer(2), peer(3)}, transfer_ctx(1.0));
    ASSERT_EQ(ranking.size(), 3u);
    EXPECT_EQ(ranking.back(), PeerId(1));
    EXPECT_EQ(ranking.front(), PeerId(2));  // remaining preference intact
  }
}

TEST(ReputationPenalty, BlindConfinesRotationToTheTrustedGroup) {
  const std::vector<PeerSnapshot> mixed{peer(1, 0.1), peer(2), peer(3)};
  BlindModel defended;
  // Round-robin keeps rotating, but only within the minimal-penalty
  // group: the distrusted peer is always ranked last.
  std::vector<PeerId> firsts;
  for (int i = 0; i < 4; ++i) {
    const auto ranking = defended.rank(mixed, transfer_ctx(2.0));
    ASSERT_EQ(ranking.size(), 3u);
    EXPECT_EQ(ranking.back(), PeerId(1));
    firsts.push_back(ranking.front());
  }
  EXPECT_EQ(firsts[0], PeerId(2));
  EXPECT_EQ(firsts[1], PeerId(3));  // rotation alive within the group
  EXPECT_EQ(firsts[2], PeerId(2));

  // Weight 0: the same snapshots rotate over the whole set, exactly as
  // a defense-free blind broker would.
  BlindModel undefended;
  const auto first = undefended.rank(mixed, transfer_ctx(0.0));
  const auto second = undefended.rank(mixed, transfer_ctx(0.0));
  const auto third = undefended.rank(mixed, transfer_ctx(0.0));
  EXPECT_EQ(first.front(), PeerId(1));
  EXPECT_EQ(second.front(), PeerId(2));
  EXPECT_EQ(third.front(), PeerId(3));
}

}  // namespace
}  // namespace peerlab::core
