// Differential selection-equivalence harness: CandidateIndex's
// threshold-walk fast path against the extracted scan-based reference
// rankers (selection_reference.hpp), asserting *bit-identical*
// selected-peer sequences.
//
// Each scenario is a fresh index driven by a seeded interleaving of
// heartbeats (register / re-register, field churn, liveness decay),
// statistics mutations, history records, time advances and petitions;
// after every petition the index's answer must equal the reference
// ranking of a broker-style snapshot mirror, element for element. 200
// scenarios per model × 5 models = 1000 scenarios, seeds derived from
// testing::test_seed() (export PEERLAB_TEST_SEED to replay a failure).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/selection_reference.hpp"
#include "peerlab/core/blind.hpp"
#include "peerlab/core/candidate_index.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/hybrid.hpp"
#include "peerlab/core/user_preference.hpp"
#include "peerlab/stats/history.hpp"
#include "peerlab/stats/peer_statistics.hpp"
#include "support/test_seed.hpp"

namespace peerlab::core {
namespace {

constexpr Seconds kInterval = 30.0;
constexpr double kMissed = 3.5;
/// Short stats window so sliding-window evictions actually happen
/// inside a scenario's few simulated hours.
constexpr Seconds kWindow = 600.0;
constexpr int kScenariosPerModel = 200;

struct FuzzPeer {
  PeerId peer;
  NodeId node;
  std::string hostname;
  double cpu_ghz = 1.0;
  double price = 1.0;
  bool idle = true;
  int queued = 0;
  int transfers = 0;
  Seconds last_seen = 0.0;
};

/// Broker twin: registry + statistics + history + index, with the same
/// feed hooks BrokerPeer installs, minus the wire.
class Harness {
 public:
  Harness()
      : index_(CandidateIndex::Config{kInterval, kMissed, /*max_inline_excludes=*/64}) {
    index_.set_history(&history_);
    history_.set_observer([this](PeerId peer) { index_.mark_dirty(peer); });
  }

  void bind(SelectionModel* model) { index_.bind_model(model); }

  void heartbeat(std::mt19937_64& rng) {
    const PeerId peer = pick_or_new(rng);
    auto [it, inserted] = peers_.try_emplace(peer);
    FuzzPeer& p = it->second;
    if (inserted) {
      p.peer = peer;
      p.node = NodeId(peer.value() + 1);
      p.hostname = "peer" + std::to_string(peer.value());
      p.cpu_ghz = 0.5 + 0.25 * static_cast<double>(rng() % 16);
      p.price = 0.25 + 0.25 * static_cast<double>(rng() % 8);
    }
    p.idle = (rng() % 3) != 0;
    p.queued = static_cast<int>(rng() % 5);
    p.transfers = static_cast<int>(rng() % 3);
    p.last_seen = now_;
    index_.upsert_peer(p.peer, p.node, p.hostname, p.cpu_ghz, p.price, find_stats(peer),
                       p.last_seen, p.idle, p.queued, p.transfers);
  }

  void mutate_stats(std::mt19937_64& rng) {
    if (peers_.empty()) return;
    const PeerId peer = pick_existing(rng);
    stats::PeerStatistics& s = stats_for(peer);
    switch (rng() % 7) {
      case 0:
        s.record_message(now_, (rng() % 4) != 0);
        break;
      case 1:
        s.sample_outbox(static_cast<double>(rng() % 20));
        break;
      case 2:
        s.sample_inbox(static_cast<double>(rng() % 20));
        break;
      case 3:
        s.set_pending_transfers(static_cast<int>(rng() % 6));
        break;
      case 4:
        s.record_task_accept((rng() % 3) != 0);
        break;
      case 5:
        s.record_task_execution((rng() % 3) != 0);
        break;
      default:
        s.record_file(static_cast<stats::FileOutcome::Value>(rng() % 3));
        break;
    }
  }

  void mutate_history(std::mt19937_64& rng) {
    if (peers_.empty()) return;
    const PeerId peer = pick_existing(rng);
    switch (rng() % 3) {
      case 0:
        history_.record_response_time(peer, 0.01 + 0.01 * static_cast<double>(rng() % 100));
        break;
      case 1: {
        stats::TaskRecord record;
        record.task = TaskId(rng() % 1000 + 1);
        record.peer = peer;
        record.submitted = now_;
        record.started = now_ + 1.0;
        record.finished = now_ + 1.0 + 0.5 * static_cast<double>(rng() % 40 + 1);
        record.ok = (rng() % 4) != 0;
        record.work = 0.5 * static_cast<double>(rng() % 20 + 1);
        history_.record_task(record);
        break;
      }
      default: {
        stats::TransferRecord record;
        record.transfer = TransferId(rng() % 1000 + 1);
        record.peer = peer;
        // Positive sizes and durations: a zero-rate transfer gives an
        // infinite wire-time estimate, which the scan propagates into
        // NaN normalization — undefined in scan and index alike.
        record.size = static_cast<Bytes>(rng() % 4096 + 64) * 1024;
        record.duration = 0.5 + 0.1 * static_cast<double>(rng() % 100);
        record.petition_time = now_;
        record.ok = (rng() % 5) != 0;
        history_.record_transfer(record);
        break;
      }
    }
  }

  void advance(std::mt19937_64& rng) {
    // Mostly small steps, occasionally a jump past the liveness
    // threshold (105 s) or the stats window so peers fall offline and
    // window events expire mid-scenario.
    switch (rng() % 8) {
      case 0:
        now_ += 120.0 + static_cast<double>(rng() % 120);
        break;
      case 1:
        now_ += kWindow * (0.5 + 0.001 * static_cast<double>(rng() % 1000));
        break;
      default:
        now_ += 0.5 + 0.25 * static_cast<double>(rng() % 60);
        break;
    }
  }

  /// Broker snapshot_group() twin at the current time.
  [[nodiscard]] std::vector<PeerSnapshot> snapshots() {
    std::vector<PeerSnapshot> out;
    out.reserve(peers_.size());
    for (auto& [peer, p] : peers_) {
      PeerSnapshot snap;
      snap.peer = p.peer;
      snap.node = p.node;
      snap.hostname = p.hostname;
      snap.cpu_ghz = p.cpu_ghz;
      snap.price_per_cpu_second = p.price;
      snap.online = (now_ - p.last_seen) <= kInterval * kMissed;
      snap.idle = p.idle;
      snap.queued_tasks = p.queued;
      snap.active_transfers = p.transfers;
      snap.statistics = find_stats(peer);
      snap.history = &history_;
      out.push_back(std::move(snap));
    }
    return out;
  }

  [[nodiscard]] SelectionContext make_context(std::mt19937_64& rng, bool allow_excludes) {
    SelectionContext ctx;
    ctx.now = now_;
    if (rng() % 2 == 0) ctx.work = 0.5 * static_cast<double>(rng() % 40);
    if (rng() % 2 == 0) ctx.payload_size = static_cast<Bytes>(rng() % 8192) * 1024;
    if (allow_excludes && !peers_.empty() && rng() % 3 == 0) {
      const std::size_t n = rng() % (peers_.size() + 1);
      for (std::size_t i = 0; i < n; ++i) ctx.exclude.push_back(pick_existing(rng));
    }
    return ctx;
  }

  CandidateIndex& index() { return index_; }
  [[nodiscard]] Seconds now() const { return now_; }
  [[nodiscard]] bool empty() const { return peers_.empty(); }

 private:
  PeerId pick_or_new(std::mt19937_64& rng) {
    if (!peers_.empty() && rng() % 3 != 0) return pick_existing(rng);
    return PeerId(rng() % 24 + 1);
  }

  PeerId pick_existing(std::mt19937_64& rng) {
    auto it = peers_.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(rng() % peers_.size()));
    return it->first;
  }

  const stats::PeerStatistics* find_stats(PeerId peer) const {
    const auto it = statistics_.find(peer);
    return it == statistics_.end() ? nullptr : &it->second;
  }

  stats::PeerStatistics& stats_for(PeerId peer) {
    auto it = statistics_.find(peer);
    if (it == statistics_.end()) {
      it = statistics_.emplace(peer, stats::PeerStatistics(kWindow)).first;
    }
    index_.note_statistics(peer, &it->second);
    return it->second;
  }

  std::map<PeerId, FuzzPeer> peers_;
  std::map<PeerId, stats::PeerStatistics> statistics_;
  stats::HistoryStore history_{64};
  CandidateIndex index_;
  Seconds now_ = 1.0;
};

std::string describe(std::uint64_t seed, int scenario, int petition,
                     const std::vector<PeerId>& got, const std::vector<PeerId>& want) {
  std::ostringstream os;
  os << "seed=" << seed << " scenario=" << scenario << " petition=" << petition << "\n  index:";
  for (const auto p : got) os << ' ' << p.value();
  os << "\n  scan: ";
  for (const auto p : want) os << ' ' << p.value();
  return os.str();
}

/// Runs kScenariosPerModel fuzz scenarios. `make_model` builds the
/// production model, `make_ref` its frozen reference twin,
/// `allow_excludes` is off for blind (a non-empty exclude list is a
/// documented fallback there, exercised in the fallback suite).
template <typename MakeModel, typename MakeRef>
void run_scenarios(MakeModel make_model, MakeRef make_ref, bool allow_excludes) {
  const std::uint64_t base = testing::test_seed();
  for (int scenario = 0; scenario < kScenariosPerModel; ++scenario) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(scenario) * 7919;
    std::mt19937_64 rng(seed);
    Harness harness;
    // Identically-seeded config streams: the model factory and its
    // reference twin must draw the same randomized config.
    std::mt19937_64 model_rng(seed ^ 0x5bf0363546174861ull);
    std::mt19937_64 ref_rng(seed ^ 0x5bf0363546174861ull);
    auto model = make_model(model_rng);
    auto ref = make_ref(ref_rng);
    harness.bind(model.get());
    const int ops = 40 + static_cast<int>(rng() % 40);
    int petition = 0;
    for (int op = 0; op < ops; ++op) {
      switch (rng() % 6) {
        case 0:
        case 1:
          harness.heartbeat(rng);
          break;
        case 2:
          harness.mutate_stats(rng);
          break;
        case 3:
          harness.mutate_history(rng);
          break;
        case 4:
          harness.advance(rng);
          break;
        default: {
          const auto ctx = harness.make_context(rng, allow_excludes);
          const std::size_t k = rng() % 5 + 1;
          const auto snaps = harness.snapshots();
          std::vector<PeerId> got;
          ASSERT_TRUE(harness.index().try_select(ctx, harness.now(), k, got))
              << "unexpected fallback, seed=" << seed << " scenario=" << scenario;
          const auto want = peerlab::testing::ref_select_k(*ref, snaps, ctx, k);
          ASSERT_EQ(got, want) << describe(seed, scenario, petition, got, want);
          ++petition;
          break;
        }
      }
    }
    ASSERT_GT(petition, 0) << "scenario produced no petitions, seed=" << seed;
  }
}

TEST(SelectionIndexEquivalence, Blind) {
  run_scenarios(
      [](std::mt19937_64&) { return std::make_unique<BlindModel>(); },
      [](std::mt19937_64&) { return std::make_unique<peerlab::testing::ReferenceBlind>(); },
      /*allow_excludes=*/false);
}

TEST(SelectionIndexEquivalence, BlindFirstAvailable) {
  run_scenarios(
      [](std::mt19937_64&) {
        return std::make_unique<BlindModel>(BlindModel::Mode::kFirstAvailable);
      },
      [](std::mt19937_64&) {
        return std::make_unique<peerlab::testing::ReferenceBlind>(
            BlindModel::Mode::kFirstAvailable);
      },
      /*allow_excludes=*/false);
}

TEST(SelectionIndexEquivalence, Economic) {
  run_scenarios(
      [](std::mt19937_64& rng) {
        EconomicConfig cfg;
        cfg.prefer_idle = (rng() % 2) == 0;
        return std::make_unique<EconomicSchedulingModel>(cfg);
      },
      [](std::mt19937_64& rng) {
        EconomicConfig cfg;
        cfg.prefer_idle = (rng() % 2) == 0;
        return std::make_unique<peerlab::testing::ReferenceEconomic>(cfg);
      },
      /*allow_excludes=*/true);
}

TEST(SelectionIndexEquivalence, DataEvaluator) {
  run_scenarios(
      [](std::mt19937_64&) {
        return std::make_unique<DataEvaluatorModel>(DataEvaluatorModel::same_priority());
      },
      [](std::mt19937_64&) {
        return std::make_unique<peerlab::testing::ReferenceEvaluator>(
            peerlab::testing::ReferenceEvaluator::same_priority());
      },
      /*allow_excludes=*/true);
}

TEST(SelectionIndexEquivalence, UserPreference) {
  const auto draw_order = [](std::mt19937_64& rng) {
    std::vector<PeerId> order;
    const std::size_t n = rng() % 16;
    for (std::size_t i = 0; i < n; ++i) order.push_back(PeerId(rng() % 24 + 1));
    return order;
  };
  run_scenarios(
      [&](std::mt19937_64& rng) {
        return std::make_unique<UserPreferenceModel>(draw_order(rng));
      },
      [&](std::mt19937_64& rng) {
        return std::make_unique<peerlab::testing::ReferenceUserPreference>(draw_order(rng));
      },
      /*allow_excludes=*/true);
}

TEST(SelectionIndexEquivalence, Hybrid) {
  run_scenarios(
      [](std::mt19937_64& rng) {
        HybridConfig cfg;
        cfg.alpha = 0.1 * static_cast<double>(rng() % 11);
        return std::make_unique<HybridModel>(cfg);
      },
      [](std::mt19937_64& rng) {
        HybridConfig cfg;
        cfg.alpha = 0.1 * static_cast<double>(rng() % 11);
        return std::make_unique<peerlab::testing::ReferenceHybrid>(cfg);
      },
      /*allow_excludes=*/true);
}

}  // namespace
}  // namespace peerlab::core
