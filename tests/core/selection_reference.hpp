#pragma once

// Scan-based reference rankers for the selection-equivalence harness
// (tests/net/waterfill_reference.hpp style).
//
// These are verbatim extractions of the five models' rank_into()
// bodies as of the introduction of the candidate index — the full
// O(n) snapshot walk, unchanged arithmetic, arena scratch replaced by
// plain vectors (the values and comparison order are identical). The
// differential tests pin CandidateIndex::try_select() bit-identical to
// these, so any drift in either implementation fails loudly.
//
// Keep this file frozen: when a model's ranking logic changes on
// purpose, the reference must be updated in the same commit and the
// equivalence suite re-run.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "peerlab/core/blind.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/hybrid.hpp"
#include "peerlab/core/snapshot.hpp"
#include "peerlab/core/user_preference.hpp"

namespace peerlab::testing {

using core::PeerSnapshot;
using core::SelectionContext;

/// append_ranked twin: sort by (cost, peer id), append.
struct RefScored {
  PeerId peer;
  double cost = 0.0;
};

inline void ref_append_ranked(std::vector<RefScored>& scored, std::vector<PeerId>& out) {
  std::sort(scored.begin(), scored.end(), [](const RefScored& a, const RefScored& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.peer < b.peer;
  });
  for (const auto& s : scored) out.push_back(s.peer);
}

/// BlindModel twin. Holds its own round-robin cursor; the differential
/// driver must call it in lockstep with the production model.
class ReferenceBlind {
 public:
  explicit ReferenceBlind(core::BlindModel::Mode mode = core::BlindModel::Mode::kRoundRobin)
      : mode_(mode) {}

  void rank_into(std::span<const PeerSnapshot> candidates, const SelectionContext& context,
                 std::vector<PeerId>& out) {
    out.clear();
    out.reserve(candidates.size());
    if (context.exclude.empty()) {
      for (const auto& c : candidates) {
        if (c.online) out.push_back(c.peer);
      }
    } else {
      for (const auto& c : candidates) {
        if (c.online && !context.excluded(c.peer)) out.push_back(c.peer);
      }
    }
    if (out.empty()) return;
    std::sort(out.begin(), out.end());
    if (context.reputation_weight != 0.0) {
      auto penalty_of = [&](PeerId peer) {
        for (const auto& c : candidates) {
          if (c.peer == peer) return context.reputation_penalty(c);
        }
        return 0.0;
      };
      std::stable_sort(out.begin(), out.end(), [&](PeerId a, PeerId b) {
        return penalty_of(a) < penalty_of(b);
      });
      auto group_end = out.begin();
      const double best = penalty_of(out.front());
      while (group_end != out.end() && penalty_of(*group_end) == best) ++group_end;
      if (mode_ == core::BlindModel::Mode::kRoundRobin) {
        const auto group = static_cast<std::size_t>(group_end - out.begin());
        const std::size_t start = static_cast<std::size_t>(next_++ % group);
        std::rotate(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(start), group_end);
      }
      return;
    }
    if (mode_ == core::BlindModel::Mode::kRoundRobin) {
      const std::size_t start = static_cast<std::size_t>(next_++ % out.size());
      std::rotate(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
    }
  }

 private:
  core::BlindModel::Mode mode_;
  std::uint64_t next_ = 0;
};

/// EconomicSchedulingModel twin, estimators included.
class ReferenceEconomic {
 public:
  explicit ReferenceEconomic(core::EconomicConfig config = {}) : config_(config) {}

  [[nodiscard]] Seconds estimate_ready_time(const PeerSnapshot& peer) const {
    Seconds ready = static_cast<double>(peer.active_transfers) * config_.transfer_drain_estimate;
    if (peer.idle && peer.queued_tasks == 0) return ready;
    Seconds per_task = config_.default_execution_estimate;
    if (peer.history != nullptr) {
      if (const auto mean = peer.history->mean_execution_time(peer.peer, config_.history_depth)) {
        per_task = *mean;
      }
    }
    const double backlog = static_cast<double>(peer.queued_tasks) + (peer.idle ? 0.0 : 0.5);
    return ready + backlog * per_task;
  }

  [[nodiscard]] Seconds estimate_service_time(const PeerSnapshot& peer,
                                              const SelectionContext& context) const {
    Seconds service = 0.0;
    if (context.work > 0.0) {
      GigaHertz speed = peer.cpu_ghz;
      if (peer.history != nullptr) {
        if (const auto hist =
                peer.history->mean_effective_speed(peer.peer, config_.history_depth)) {
          speed = *hist;
        }
      }
      service += context.work / std::max(speed, 1e-6);
    }
    if (context.payload_size > 0) {
      MbitPerSec rate = config_.default_rate_estimate;
      if (peer.history != nullptr) {
        if (const auto hist = peer.history->mean_transfer_rate(peer.peer, config_.history_depth)) {
          rate = *hist;
        }
      }
      service += wire_time(context.payload_size, rate);
    }
    if (peer.history != nullptr) {
      if (const auto response =
              peer.history->mean_response_time(peer.peer, config_.history_depth)) {
        service += *response;
      }
    }
    return service;
  }

  [[nodiscard]] double estimate_cost(const PeerSnapshot& peer,
                                     const SelectionContext& context) const {
    GigaHertz speed = peer.cpu_ghz;
    const Seconds cpu_time = context.work > 0.0 ? context.work / std::max(speed, 1e-6)
                                                : estimate_service_time(peer, context);
    return peer.price_per_cpu_second * cpu_time;
  }

  void rank_into(std::span<const PeerSnapshot> candidates, const SelectionContext& context,
                 std::vector<PeerId>& out) const {
    out.clear();
    struct Offer {
      const PeerSnapshot* peer = nullptr;
      Seconds completion = 0.0;
      double cost = 0.0;
      bool feasible = true;
    };
    std::vector<Offer> offers;
    offers.reserve(candidates.size());

    const bool has_excludes = !context.exclude.empty();
    bool any_idle = false;
    for (const auto& c : candidates) {
      if (c.online && c.idle && !(has_excludes && context.excluded(c.peer))) {
        any_idle = true;
        break;
      }
    }

    for (const auto& c : candidates) {
      if (!c.online || (has_excludes && context.excluded(c.peer))) continue;
      if (config_.prefer_idle && any_idle && !c.idle) continue;
      Offer offer;
      offer.peer = &c;
      offer.completion = estimate_ready_time(c) + estimate_service_time(c, context);
      offer.cost = estimate_cost(c, context);
      if (context.deadline > 0.0 && context.now + offer.completion > context.deadline) {
        offer.feasible = false;
      }
      if (context.budget > 0.0 && offer.cost > context.budget) {
        offer.feasible = false;
      }
      offers.push_back(offer);
    }
    if (offers.empty()) return;

    const bool any_feasible =
        std::any_of(offers.begin(), offers.end(), [](const Offer& o) { return o.feasible; });
    if (any_feasible) {
      offers.erase(std::remove_if(offers.begin(), offers.end(),
                                  [](const Offer& o) { return !o.feasible; }),
                   offers.end());
    }

    auto span_of = [&offers](auto extract) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (const auto& o : offers) {
        lo = std::min(lo, extract(o));
        hi = std::max(hi, extract(o));
      }
      return std::pair<double, double>(lo, hi);
    };
    const auto [tlo, thi] = span_of([](const Offer& o) { return o.completion; });
    const auto [clo, chi] = span_of([](const Offer& o) { return o.cost; });
    const double wsum = config_.time_weight + config_.cost_weight;

    std::vector<RefScored> scored;
    scored.reserve(offers.size());
    for (const auto& o : offers) {
      const double tnorm = thi > tlo ? (o.completion - tlo) / (thi - tlo) : 0.0;
      const double cnorm = chi > clo ? (o.cost - clo) / (chi - clo) : 0.0;
      double utility = (config_.time_weight * tnorm + config_.cost_weight * cnorm) / wsum;
      utility -= 1e-9 * o.peer->cpu_ghz;
      utility += context.reputation_penalty(*o.peer);
      scored.push_back(RefScored{o.peer->peer, utility});
    }
    out.reserve(scored.size());
    ref_append_ranked(scored, out);
  }

 private:
  core::EconomicConfig config_;
};

/// DataEvaluatorModel twin.
class ReferenceEvaluator {
 public:
  explicit ReferenceEvaluator(std::vector<core::CriterionWeight> weights)
      : weights_(std::move(weights)) {
    for (const auto& w : weights_) weight_sum_ += w.weight;
  }

  static ReferenceEvaluator same_priority() {
    std::vector<core::CriterionWeight> weights;
    weights.reserve(stats::kCriterionCount);
    for (std::size_t i = 0; i < stats::kCriterionCount; ++i) {
      weights.push_back(core::CriterionWeight{static_cast<stats::Criterion>(i), 1.0});
    }
    return ReferenceEvaluator(std::move(weights));
  }

  [[nodiscard]] static double goodness(stats::Criterion criterion, double value) {
    switch (criterion) {
      case stats::Criterion::kOutboxNow:
      case stats::Criterion::kOutboxAvg:
      case stats::Criterion::kInboxNow:
      case stats::Criterion::kInboxAvg:
      case stats::Criterion::kPendingTransfers:
        return 1.0 / (1.0 + std::max(0.0, value));
      default: {
        const double fraction = std::clamp(value / 100.0, 0.0, 1.0);
        return stats::higher_is_better(criterion) ? fraction : 1.0 - fraction;
      }
    }
  }

  [[nodiscard]] double cost(const PeerSnapshot& peer, const SelectionContext& context) const {
    if (peer.statistics == nullptr) {
      return 0.5;
    }
    double weighted = 0.0;
    for (const auto& w : weights_) {
      if (w.weight == 0.0) continue;
      const double value = peer.statistics->value(w.criterion, context.now);
      weighted += w.weight * goodness(w.criterion, value);
    }
    return 1.0 - weighted / weight_sum_;
  }

  void rank_into(std::span<const PeerSnapshot> candidates, const SelectionContext& context,
                 std::vector<PeerId>& out) const {
    out.clear();
    std::vector<RefScored> scored;
    scored.reserve(candidates.size());
    const bool has_excludes = !context.exclude.empty();
    for (const auto& c : candidates) {
      if (!c.online || (has_excludes && context.excluded(c.peer))) continue;
      scored.push_back(RefScored{c.peer, cost(c, context) + context.reputation_penalty(c)});
    }
    out.reserve(scored.size());
    ref_append_ranked(scored, out);
  }

 private:
  std::vector<core::CriterionWeight> weights_;
  double weight_sum_ = 0.0;
};

/// UserPreferenceModel twin (explicit-order mode).
class ReferenceUserPreference {
 public:
  explicit ReferenceUserPreference(std::vector<PeerId> preference_order)
      : preference_(std::move(preference_order)) {
    position_.reserve(preference_.size());
    for (std::size_t i = 0; i < preference_.size(); ++i) {
      position_.emplace_back(preference_[i], i);
    }
    std::sort(position_.begin(), position_.end());
    position_.erase(std::unique(position_.begin(), position_.end(),
                                [](const auto& a, const auto& b) { return a.first == b.first; }),
                    position_.end());
  }

  [[nodiscard]] double base_cost(PeerId peer) const {
    const auto it = std::lower_bound(position_.begin(), position_.end(), peer,
                                     [](const auto& entry, PeerId p) { return entry.first < p; });
    return it != position_.end() && it->first == peer
               ? static_cast<double>(it->second)
               : static_cast<double>(preference_.size()) + static_cast<double>(peer.value());
  }

  void rank_into(std::span<const PeerSnapshot> candidates, const SelectionContext& context,
                 std::vector<PeerId>& out) const {
    out.clear();
    std::vector<RefScored> scored;
    scored.reserve(candidates.size());
    const bool has_excludes = !context.exclude.empty();
    for (const auto& c : candidates) {
      if (!c.online || (has_excludes && context.excluded(c.peer))) continue;
      double cost = base_cost(c.peer);
      cost += context.reputation_penalty(c) * static_cast<double>(candidates.size());
      scored.push_back(RefScored{c.peer, cost});
    }
    out.reserve(scored.size());
    ref_append_ranked(scored, out);
  }

 private:
  std::vector<PeerId> preference_;
  std::vector<std::pair<PeerId, std::size_t>> position_;
};

/// HybridModel twin.
class ReferenceHybrid {
 public:
  explicit ReferenceHybrid(core::HybridConfig config = {})
      : alpha_(config.alpha),
        economic_(config.economic),
        evaluator_(config.evaluator_weights.empty()
                       ? ReferenceEvaluator::same_priority()
                       : ReferenceEvaluator(std::move(config.evaluator_weights))) {}

  void rank_into(std::span<const PeerSnapshot> candidates, const SelectionContext& context,
                 std::vector<PeerId>& out) const {
    out.clear();
    struct Term {
      const PeerSnapshot* peer = nullptr;
      double economic = 0.0;
      double evaluator = 0.0;
    };
    std::vector<Term> terms;
    terms.reserve(candidates.size());
    const bool has_excludes = !context.exclude.empty();
    for (const auto& c : candidates) {
      if (!c.online || (has_excludes && context.excluded(c.peer))) continue;
      Term t;
      t.peer = &c;
      t.economic = economic_.estimate_ready_time(c) +
                   economic_.estimate_service_time(c, context) +
                   economic_.estimate_cost(c, context);
      t.evaluator = evaluator_.cost(c, context);
      terms.push_back(t);
    }
    if (terms.empty()) return;

    auto normalize = [&terms](auto get, auto set) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (const auto& t : terms) {
        lo = std::min(lo, get(t));
        hi = std::max(hi, get(t));
      }
      for (auto& t : terms) {
        set(t, hi > lo ? (get(t) - lo) / (hi - lo) : 0.0);
      }
    };
    normalize([](const Term& t) { return t.economic; },
              [](Term& t, double v) { t.economic = v; });
    normalize([](const Term& t) { return t.evaluator; },
              [](Term& t, double v) { t.evaluator = v; });

    std::vector<RefScored> scored;
    scored.reserve(terms.size());
    for (const auto& t : terms) {
      scored.push_back(RefScored{t.peer->peer, alpha_ * t.economic +
                                                   (1.0 - alpha_) * t.evaluator +
                                                   context.reputation_penalty(*t.peer)});
    }
    out.reserve(scored.size());
    ref_append_ranked(scored, out);
  }

 private:
  double alpha_;
  ReferenceEconomic economic_;
  ReferenceEvaluator evaluator_;
};

/// select_k twin over any of the references.
template <typename Ranker>
std::vector<PeerId> ref_select_k(Ranker& ranker, std::span<const PeerSnapshot> candidates,
                                 const SelectionContext& context, std::size_t k) {
  std::vector<PeerId> ranking;
  ranker.rank_into(candidates, context, ranking);
  const std::size_t n = std::min(k, ranking.size());
  ranking.resize(n);
  return ranking;
}

}  // namespace peerlab::testing
