#include "peerlab/core/selection_model.hpp"

#include <gtest/gtest.h>

#include "peerlab/core/blind.hpp"

namespace peerlab::core {
namespace {

std::vector<PeerSnapshot> three_peers() {
  std::vector<PeerSnapshot> peers(3);
  for (std::size_t i = 0; i < 3; ++i) {
    peers[i].peer = PeerId(i + 1);
    peers[i].node = NodeId(i + 1);
  }
  return peers;
}

TEST(SelectionModel, SelectReturnsTopOfRanking) {
  BlindModel model(BlindModel::Mode::kFirstAvailable);
  const auto peers = three_peers();
  SelectionContext ctx;
  EXPECT_EQ(model.select(peers, ctx), PeerId(1));
}

TEST(SelectionModel, SelectOnEmptyCandidatesIsInvalid) {
  BlindModel model;
  SelectionContext ctx;
  EXPECT_FALSE(model.select({}, ctx).valid());
}

TEST(SelectionModel, SelectKClampsToEligible) {
  BlindModel model(BlindModel::Mode::kFirstAvailable);
  const auto peers = three_peers();
  SelectionContext ctx;
  EXPECT_EQ(model.select_k(peers, ctx, 2).size(), 2u);
  EXPECT_EQ(model.select_k(peers, ctx, 10).size(), 3u);
  EXPECT_TRUE(model.select_k(peers, ctx, 0).empty());
}

TEST(SelectionModel, RankedByCostSortsAscendingWithIdTiebreak) {
  std::vector<ScoredPeer> scored{
      {PeerId(3), 0.5}, {PeerId(1), 0.5}, {PeerId(2), 0.1}, {PeerId(4), 0.9}};
  const auto ranked = ranked_by_cost(std::move(scored));
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0], PeerId(2));
  EXPECT_EQ(ranked[1], PeerId(1));  // tie at 0.5 -> lower id first
  EXPECT_EQ(ranked[2], PeerId(3));
  EXPECT_EQ(ranked[3], PeerId(4));
}

TEST(SelectionContextEnum, PurposeNames) {
  EXPECT_STREQ(to_string(SelectionContext::Purpose::kFileTransfer), "file-transfer");
  EXPECT_STREQ(to_string(SelectionContext::Purpose::kTaskExecution), "task-execution");
  EXPECT_STREQ(to_string(SelectionContext::Purpose::kGeneric), "generic");
}

}  // namespace
}  // namespace peerlab::core
