#include "peerlab/core/selection_model.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "peerlab/core/blind.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/hybrid.hpp"
#include "peerlab/core/user_preference.hpp"

namespace peerlab::core {
namespace {

std::vector<PeerSnapshot> three_peers() {
  std::vector<PeerSnapshot> peers(3);
  for (std::size_t i = 0; i < 3; ++i) {
    peers[i].peer = PeerId(i + 1);
    peers[i].node = NodeId(i + 1);
  }
  return peers;
}

TEST(SelectionModel, SelectReturnsTopOfRanking) {
  BlindModel model(BlindModel::Mode::kFirstAvailable);
  const auto peers = three_peers();
  SelectionContext ctx;
  EXPECT_EQ(model.select(peers, ctx), PeerId(1));
}

TEST(SelectionModel, SelectOnEmptyCandidatesIsInvalid) {
  BlindModel model;
  SelectionContext ctx;
  EXPECT_FALSE(model.select({}, ctx).valid());
}

TEST(SelectionModel, SelectKClampsToEligible) {
  BlindModel model(BlindModel::Mode::kFirstAvailable);
  const auto peers = three_peers();
  SelectionContext ctx;
  EXPECT_EQ(model.select_k(peers, ctx, 2).size(), 2u);
  EXPECT_EQ(model.select_k(peers, ctx, 10).size(), 3u);
  EXPECT_TRUE(model.select_k(peers, ctx, 0).empty());
}

TEST(SelectionModel, RankedByCostSortsAscendingWithIdTiebreak) {
  std::vector<ScoredPeer> scored{
      {PeerId(3), 0.5}, {PeerId(1), 0.5}, {PeerId(2), 0.1}, {PeerId(4), 0.9}};
  const auto ranked = ranked_by_cost(std::move(scored));
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0], PeerId(2));
  EXPECT_EQ(ranked[1], PeerId(1));  // tie at 0.5 -> lower id first
  EXPECT_EQ(ranked[2], PeerId(3));
  EXPECT_EQ(ranked[3], PeerId(4));
}

TEST(SelectionModel, EveryModelHonoursTheExcludeList) {
  // Failover re-petitions carry the peers that already failed; every
  // model must skip them no matter how well they score.
  const auto peers = three_peers();
  SelectionContext ctx;
  ctx.exclude = {PeerId(1), PeerId(3)};
  std::vector<std::unique_ptr<SelectionModel>> models;
  models.push_back(std::make_unique<BlindModel>(BlindModel::Mode::kFirstAvailable));
  models.push_back(std::make_unique<BlindModel>(BlindModel::Mode::kRoundRobin));
  models.push_back(std::make_unique<EconomicSchedulingModel>());
  models.push_back(
      std::make_unique<DataEvaluatorModel>(DataEvaluatorModel::same_priority()));
  models.push_back(std::make_unique<UserPreferenceModel>(
      std::vector<PeerId>{PeerId(3), PeerId(1), PeerId(2)}));
  models.push_back(std::make_unique<HybridModel>());
  for (const auto& model : models) {
    const auto ranked = model->rank(peers, ctx);
    ASSERT_EQ(ranked.size(), 1u) << model->name();
    EXPECT_EQ(ranked[0], PeerId(2)) << model->name();
    EXPECT_EQ(model->select(peers, ctx), PeerId(2)) << model->name();
  }
  // Excluding everyone leaves nothing to select.
  ctx.exclude = {PeerId(1), PeerId(2), PeerId(3)};
  for (const auto& model : models) {
    EXPECT_TRUE(model->rank(peers, ctx).empty()) << model->name();
    EXPECT_FALSE(model->select(peers, ctx).valid()) << model->name();
  }
}

TEST(SelectionContextEnum, PurposeNames) {
  EXPECT_STREQ(to_string(SelectionContext::Purpose::kFileTransfer), "file-transfer");
  EXPECT_STREQ(to_string(SelectionContext::Purpose::kTaskExecution), "task-execution");
  EXPECT_STREQ(to_string(SelectionContext::Purpose::kGeneric), "generic");
}

}  // namespace
}  // namespace peerlab::core
