// RankedTree order-statistics invariants: kth() ascending order,
// insert/erase round trips, duplicate keys disambiguated by peer id,
// and a randomized differential against a sorted mirror.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <utility>
#include <vector>

#include "peerlab/core/ranked_tree.hpp"
#include "support/test_seed.hpp"

namespace peerlab::core {
namespace {

TEST(RankedTree, InsertsAndRanksAscending) {
  RankedTree tree(7);
  tree.insert(3.0, PeerId(1));
  tree.insert(1.0, PeerId(2));
  tree.insert(2.0, PeerId(3));
  ASSERT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.kth(0).peer, PeerId(2));
  EXPECT_EQ(tree.kth(1).peer, PeerId(3));
  EXPECT_EQ(tree.kth(2).peer, PeerId(1));
  EXPECT_DOUBLE_EQ(tree.kth(0).key, 1.0);
}

TEST(RankedTree, DuplicateKeysOrderByPeer) {
  RankedTree tree(7);
  tree.insert(1.0, PeerId(9));
  tree.insert(1.0, PeerId(3));
  tree.insert(1.0, PeerId(6));
  EXPECT_EQ(tree.kth(0).peer, PeerId(3));
  EXPECT_EQ(tree.kth(1).peer, PeerId(6));
  EXPECT_EQ(tree.kth(2).peer, PeerId(9));
}

TEST(RankedTree, EraseRemovesExactEntry) {
  RankedTree tree(7);
  tree.insert(1.0, PeerId(1));
  tree.insert(1.0, PeerId(2));
  EXPECT_FALSE(tree.erase(2.0, PeerId(1)));  // wrong key
  EXPECT_TRUE(tree.erase(1.0, PeerId(1)));
  ASSERT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.kth(0).peer, PeerId(2));
  EXPECT_FALSE(tree.erase(1.0, PeerId(1)));  // already gone
}

TEST(RankedTree, ClearEmptiesAndReusesNodes) {
  RankedTree tree(7);
  for (std::uint64_t i = 1; i <= 64; ++i) tree.insert(static_cast<double>(i), PeerId(i));
  tree.clear();
  EXPECT_TRUE(tree.empty());
  tree.insert(5.0, PeerId(5));
  ASSERT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.kth(0).peer, PeerId(5));
}

TEST(RankedTree, DifferentialAgainstSortedMirror) {
  const std::uint64_t seed = testing::test_seed();
  std::mt19937_64 rng(seed);
  RankedTree tree(42);
  std::vector<std::pair<double, std::uint64_t>> mirror;  // (key, peer)
  for (int round = 0; round < 5000; ++round) {
    const std::uint64_t peer = rng() % 200 + 1;
    const double key = static_cast<double>(rng() % 50) * 0.5;
    const auto entry = std::make_pair(key, peer);
    const auto it = std::lower_bound(mirror.begin(), mirror.end(), entry);
    const bool present = it != mirror.end() && *it == entry;
    if (present && rng() % 2 == 0) {
      ASSERT_TRUE(tree.erase(key, PeerId(peer))) << "seed=" << seed << " round=" << round;
      mirror.erase(it);
    } else if (!present) {
      tree.insert(key, PeerId(peer));
      mirror.insert(it, entry);
    }
    ASSERT_EQ(tree.size(), mirror.size()) << "seed=" << seed << " round=" << round;
    if (round % 97 == 0 && !mirror.empty()) {
      for (std::size_t i = 0; i < mirror.size(); ++i) {
        const auto got = tree.kth(i);
        ASSERT_EQ(got.key, mirror[i].first) << "seed=" << seed << " round=" << round;
        ASSERT_EQ(got.peer.value(), mirror[i].second) << "seed=" << seed << " round=" << round;
      }
    }
  }
}

}  // namespace
}  // namespace peerlab::core
