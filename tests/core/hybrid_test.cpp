#include "peerlab/core/hybrid.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "peerlab/common/check.hpp"

namespace peerlab::core {
namespace {

struct Population {
  std::deque<stats::PeerStatistics> statistics;
  std::vector<PeerSnapshot> snapshots;
};

/// Peer 1: fast but unreliable. Peer 2: slow but spotless. Peer 3:
/// mediocre on both axes.
Population mixed_population() {
  Population pop;
  auto& unreliable = pop.statistics.emplace_back(3600.0);
  for (int i = 0; i < 10; ++i) unreliable.record_message(static_cast<double>(i), i % 2 == 0);
  for (int i = 0; i < 4; ++i) unreliable.record_file(stats::FileOutcome::kFailed);
  auto& spotless = pop.statistics.emplace_back(3600.0);
  for (int i = 0; i < 10; ++i) spotless.record_message(static_cast<double>(i), true);
  spotless.record_file(stats::FileOutcome::kCompleted);
  auto& mediocre = pop.statistics.emplace_back(3600.0);
  for (int i = 0; i < 10; ++i) mediocre.record_message(static_cast<double>(i), i % 4 != 0);

  const double cpus[3] = {3.0, 0.8, 1.5};
  for (int i = 0; i < 3; ++i) {
    PeerSnapshot snap;
    snap.peer = PeerId(static_cast<std::uint64_t>(i + 1));
    snap.node = NodeId(static_cast<std::uint64_t>(i + 1));
    snap.cpu_ghz = cpus[i];
    snap.statistics = &pop.statistics[static_cast<std::size_t>(i)];
    pop.snapshots.push_back(std::move(snap));
  }
  return pop;
}

SelectionContext task_ctx() {
  SelectionContext ctx;
  ctx.purpose = SelectionContext::Purpose::kTaskExecution;
  ctx.work = 100.0;
  ctx.now = 20.0;
  return ctx;
}

TEST(Hybrid, AlphaOneMatchesEconomicOrdering) {
  auto pop = mixed_population();
  HybridConfig cfg;
  cfg.alpha = 1.0;
  HybridModel hybrid(cfg);
  EconomicConfig ecfg;
  ecfg.prefer_idle = false;
  EconomicSchedulingModel economic(ecfg);
  // Both rank by time/cost: the 3 GHz peer wins despite its record.
  EXPECT_EQ(hybrid.rank(pop.snapshots, task_ctx()).front(), PeerId(1));
  EXPECT_EQ(economic.rank(pop.snapshots, task_ctx()).front(), PeerId(1));
}

TEST(Hybrid, AlphaZeroMatchesEvaluatorOrdering) {
  auto pop = mixed_population();
  HybridConfig cfg;
  cfg.alpha = 0.0;
  HybridModel hybrid(cfg);
  auto evaluator = DataEvaluatorModel::same_priority();
  EXPECT_EQ(hybrid.rank(pop.snapshots, task_ctx()).front(), PeerId(2));
  EXPECT_EQ(evaluator.rank(pop.snapshots, task_ctx()).front(), PeerId(2));
}

TEST(Hybrid, MidAlphaTradesSpeedAgainstReliability) {
  auto pop = mixed_population();
  // At alpha 0.5 the spotless-but-slow peer and the fast-but-flaky
  // peer both get penalized once; the ordering must be a blend, i.e.
  // the mediocre peer can never be ranked below BOTH extremes' losers
  // simultaneously more than once... concretely: the winner at 0.5 is
  // one of the two specialists, and sweeping alpha moves the boundary.
  std::vector<PeerId> winners;
  for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    HybridConfig cfg;
    cfg.alpha = alpha;
    HybridModel hybrid(cfg);
    winners.push_back(hybrid.rank(pop.snapshots, task_ctx()).front());
  }
  EXPECT_EQ(winners.front(), PeerId(2));  // pure evaluator
  EXPECT_EQ(winners.back(), PeerId(1));   // pure economic
  // Monotone handover: once the fast peer takes over it keeps winning.
  bool switched = false;
  for (std::size_t i = 1; i < winners.size(); ++i) {
    if (winners[i] == PeerId(1)) switched = true;
    if (switched) {
      EXPECT_EQ(winners[i], PeerId(1));
    }
  }
}

TEST(Hybrid, OfflinePeersExcluded) {
  auto pop = mixed_population();
  pop.snapshots[0].online = false;
  HybridModel hybrid;
  const auto ranking = hybrid.rank(pop.snapshots, task_ctx());
  EXPECT_EQ(ranking.size(), 2u);
  for (const auto peer : ranking) EXPECT_NE(peer, PeerId(1));
}

TEST(Hybrid, EmptyCandidatesGiveEmptyRanking) {
  HybridModel hybrid;
  EXPECT_TRUE(hybrid.rank({}, task_ctx()).empty());
}

TEST(Hybrid, RejectsBadAlpha) {
  HybridConfig cfg;
  cfg.alpha = -0.1;
  EXPECT_THROW(HybridModel{cfg}, InvariantError);
  cfg.alpha = 1.1;
  EXPECT_THROW(HybridModel{cfg}, InvariantError);
}

TEST(Hybrid, NameIsStable) { EXPECT_EQ(HybridModel{}.name(), "hybrid"); }

}  // namespace
}  // namespace peerlab::core
