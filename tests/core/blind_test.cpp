#include "peerlab/core/blind.hpp"

#include <gtest/gtest.h>

#include <map>

namespace peerlab::core {
namespace {

std::vector<PeerSnapshot> peers(std::size_t n) {
  std::vector<PeerSnapshot> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].peer = PeerId(i + 1);
    out[i].node = NodeId(i + 1);
  }
  return out;
}

TEST(Blind, FirstAvailableAlwaysPicksLowestId) {
  BlindModel model(BlindModel::Mode::kFirstAvailable);
  const auto candidates = peers(4);
  SelectionContext ctx;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(model.select(candidates, ctx), PeerId(1));
  }
}

TEST(Blind, RoundRobinCyclesThroughAllPeers) {
  BlindModel model(BlindModel::Mode::kRoundRobin);
  const auto candidates = peers(3);
  SelectionContext ctx;
  std::map<PeerId, int> picks;
  for (int i = 0; i < 9; ++i) {
    ++picks[model.select(candidates, ctx)];
  }
  ASSERT_EQ(picks.size(), 3u);
  for (const auto& [peer, count] : picks) {
    EXPECT_EQ(count, 3);
  }
}

TEST(Blind, RoundRobinRankingIsARotation) {
  BlindModel model(BlindModel::Mode::kRoundRobin);
  const auto candidates = peers(3);
  SelectionContext ctx;
  const auto first = model.rank(candidates, ctx);
  const auto second = model.rank(candidates, ctx);
  ASSERT_EQ(first.size(), 3u);
  ASSERT_EQ(second.size(), 3u);
  EXPECT_EQ(first[0], PeerId(1));
  EXPECT_EQ(second[0], PeerId(2));
  EXPECT_EQ(second[1], PeerId(3));
  EXPECT_EQ(second[2], PeerId(1));
}

TEST(Blind, OfflinePeersSkipped) {
  BlindModel model(BlindModel::Mode::kFirstAvailable);
  auto candidates = peers(3);
  candidates[0].online = false;
  SelectionContext ctx;
  EXPECT_EQ(model.select(candidates, ctx), PeerId(2));
}

TEST(Blind, EmptyOrAllOfflineGivesNothing) {
  BlindModel model;
  SelectionContext ctx;
  EXPECT_TRUE(model.rank({}, ctx).empty());
  auto candidates = peers(2);
  candidates[0].online = false;
  candidates[1].online = false;
  EXPECT_TRUE(model.rank(candidates, ctx).empty());
}

TEST(Blind, IgnoresAllQualitySignals) {
  // A straggler with huge queues is picked as readily as anyone —
  // that's the point of the baseline.
  BlindModel model(BlindModel::Mode::kRoundRobin);
  auto candidates = peers(2);
  candidates[0].queued_tasks = 100;
  candidates[0].idle = false;
  SelectionContext ctx;
  std::map<PeerId, int> picks;
  for (int i = 0; i < 10; ++i) ++picks[model.select(candidates, ctx)];
  EXPECT_EQ(picks[PeerId(1)], 5);
  EXPECT_EQ(picks[PeerId(2)], 5);
}

}  // namespace
}  // namespace peerlab::core
