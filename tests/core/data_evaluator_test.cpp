#include "peerlab/core/data_evaluator.hpp"

#include <gtest/gtest.h>

#include "peerlab/common/check.hpp"

namespace peerlab::core {
namespace {

using stats::Criterion;

TEST(DataEvaluator, SamePriorityCoversEveryCriterion) {
  const auto model = DataEvaluatorModel::same_priority();
  EXPECT_EQ(model.weights().size(), stats::kCriterionCount);
  for (const auto& w : model.weights()) {
    EXPECT_DOUBLE_EQ(w.weight, 1.0);
  }
}

TEST(DataEvaluator, GoodnessMapsPercentagesLinearly) {
  EXPECT_DOUBLE_EQ(DataEvaluatorModel::goodness(Criterion::kMsgSuccessTotal, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(DataEvaluatorModel::goodness(Criterion::kMsgSuccessTotal, 50.0), 0.5);
  EXPECT_DOUBLE_EQ(DataEvaluatorModel::goodness(Criterion::kMsgSuccessTotal, 0.0), 0.0);
}

TEST(DataEvaluator, GoodnessInvertsLowerIsBetterPercentages) {
  EXPECT_DOUBLE_EQ(DataEvaluatorModel::goodness(Criterion::kFileCancelTotal, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(DataEvaluatorModel::goodness(Criterion::kFileCancelTotal, 100.0), 0.0);
}

TEST(DataEvaluator, GoodnessOfCountsDecaysSmoothly) {
  EXPECT_DOUBLE_EQ(DataEvaluatorModel::goodness(Criterion::kPendingTransfers, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(DataEvaluatorModel::goodness(Criterion::kPendingTransfers, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(DataEvaluatorModel::goodness(Criterion::kOutboxNow, 3.0), 0.25);
  // Monotone decreasing.
  double prev = 1.0;
  for (double v = 0.0; v <= 20.0; v += 1.0) {
    const double g = DataEvaluatorModel::goodness(Criterion::kInboxAvg, v);
    EXPECT_LE(g, prev);
    prev = g;
  }
}

TEST(DataEvaluator, GoodnessClampsOutOfRangePercentages) {
  EXPECT_DOUBLE_EQ(DataEvaluatorModel::goodness(Criterion::kMsgSuccessTotal, 150.0), 1.0);
  EXPECT_DOUBLE_EQ(DataEvaluatorModel::goodness(Criterion::kMsgSuccessTotal, -10.0), 0.0);
}

TEST(DataEvaluator, PerfectPeerHasZeroCost) {
  stats::PeerStatistics perfect;
  perfect.record_message(0.0, true);
  perfect.record_task_accept(true);
  perfect.record_task_execution(true);
  perfect.record_file(stats::FileOutcome::kCompleted);
  PeerSnapshot p;
  p.peer = PeerId(1);
  p.statistics = &perfect;
  const auto model = DataEvaluatorModel::same_priority();
  SelectionContext ctx;
  ctx.now = 1.0;
  EXPECT_NEAR(model.cost(p, ctx), 0.0, 1e-12);
}

TEST(DataEvaluator, WorsePeerCostsMore) {
  stats::PeerStatistics good, bad;
  for (int i = 0; i < 10; ++i) {
    good.record_message(static_cast<double>(i), true);
    bad.record_message(static_cast<double>(i), i % 2 == 0);  // 50%
  }
  bad.set_pending_transfers(4);
  bad.sample_outbox(6.0);

  PeerSnapshot pg, pb;
  pg.peer = PeerId(1);
  pg.statistics = &good;
  pb.peer = PeerId(2);
  pb.statistics = &bad;
  const auto model = DataEvaluatorModel::same_priority();
  SelectionContext ctx;
  ctx.now = 10.0;
  EXPECT_LT(model.cost(pg, ctx), model.cost(pb, ctx));

  auto mutable_model = DataEvaluatorModel::same_priority();
  std::vector<PeerSnapshot> peers{pb, pg};
  EXPECT_EQ(mutable_model.rank(peers, ctx).front(), PeerId(1));
}

TEST(DataEvaluator, ZeroWeightCriteriaAreIgnored) {
  // Weight only message success; a peer with terrible file stats but
  // perfect messaging must win.
  DataEvaluatorModel model({{Criterion::kMsgSuccessTotal, 1.0},
                            {Criterion::kFileSentTotal, 0.0}});
  stats::PeerStatistics msgs_good_files_bad;
  msgs_good_files_bad.record_message(0.0, true);
  for (int i = 0; i < 5; ++i) msgs_good_files_bad.record_file(stats::FileOutcome::kFailed);
  stats::PeerStatistics msgs_bad_files_good;
  msgs_bad_files_good.record_message(0.0, false);
  msgs_bad_files_good.record_file(stats::FileOutcome::kCompleted);

  PeerSnapshot a, b;
  a.peer = PeerId(1);
  a.statistics = &msgs_good_files_bad;
  b.peer = PeerId(2);
  b.statistics = &msgs_bad_files_good;
  SelectionContext ctx;
  ctx.now = 1.0;
  std::vector<PeerSnapshot> peers{a, b};
  EXPECT_EQ(model.rank(peers, ctx).front(), PeerId(1));
}

TEST(DataEvaluator, CustomWeightsShiftTheDecision) {
  stats::PeerStatistics queuey;  // good success, long queues
  queuey.record_message(0.0, true);
  queuey.sample_outbox(8.0);
  stats::PeerStatistics lossy;  // bad success, empty queues
  lossy.record_message(0.0, false);
  lossy.record_message(0.5, true);
  lossy.sample_outbox(0.0);

  PeerSnapshot a, b;
  a.peer = PeerId(1);
  a.statistics = &queuey;
  b.peer = PeerId(2);
  b.statistics = &lossy;
  SelectionContext ctx;
  ctx.now = 1.0;
  std::vector<PeerSnapshot> peers{a, b};

  DataEvaluatorModel msg_focused({{Criterion::kMsgSuccessTotal, 1.0}});
  EXPECT_EQ(msg_focused.rank(peers, ctx).front(), PeerId(1));
  DataEvaluatorModel queue_focused({{Criterion::kOutboxNow, 1.0}});
  EXPECT_EQ(queue_focused.rank(peers, ctx).front(), PeerId(2));
}

TEST(DataEvaluator, UnknownPeersGetNeutralCost) {
  const auto model = DataEvaluatorModel::same_priority();
  PeerSnapshot anon;
  anon.peer = PeerId(1);
  SelectionContext ctx;
  EXPECT_DOUBLE_EQ(model.cost(anon, ctx), 0.5);
}

TEST(DataEvaluator, OfflinePeersExcluded) {
  auto model = DataEvaluatorModel::same_priority();
  PeerSnapshot off;
  off.peer = PeerId(1);
  off.online = false;
  SelectionContext ctx;
  std::vector<PeerSnapshot> peers{off};
  EXPECT_TRUE(model.rank(peers, ctx).empty());
}

TEST(DataEvaluator, RejectsDegenerateWeightVectors) {
  EXPECT_THROW(DataEvaluatorModel({}), InvariantError);
  EXPECT_THROW(DataEvaluatorModel({{Criterion::kMsgSuccessTotal, 0.0}}), InvariantError);
  EXPECT_THROW(DataEvaluatorModel({{Criterion::kMsgSuccessTotal, -1.0}}), InvariantError);
}

TEST(DataEvaluator, CostIsMonotoneInOneCriterion) {
  // Property: with a single-criterion model, improving that criterion
  // never raises the cost.
  DataEvaluatorModel model({{Criterion::kMsgSuccessTotal, 1.0}});
  SelectionContext ctx;
  double prev_cost = 2.0;
  for (int good = 0; good <= 10; ++good) {
    stats::PeerStatistics s;
    for (int i = 0; i < 10; ++i) s.record_message(0.0, i < good);
    PeerSnapshot p;
    p.peer = PeerId(1);
    p.statistics = &s;
    ctx.now = 1.0;
    const double c = model.cost(p, ctx);
    EXPECT_LT(c, prev_cost);
    prev_cost = c;
  }
}

}  // namespace
}  // namespace peerlab::core
