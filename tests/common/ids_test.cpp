#include "peerlab/common/ids.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace peerlab {
namespace {

TEST(Ids, DefaultConstructedIsInvalid) {
  PeerId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), 0u);
}

TEST(Ids, ExplicitValueRoundTrips) {
  NodeId id(42);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(Ids, EqualityAndOrdering) {
  TaskId a(1), b(2), c(1);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_LE(a, c);
  EXPECT_GT(b, a);
  EXPECT_GE(c, a);
}

TEST(Ids, AllocatorMintsSequentialIds) {
  IdAllocator<PipeId> alloc;
  EXPECT_EQ(alloc.next().value(), 1u);
  EXPECT_EQ(alloc.next().value(), 2u);
  EXPECT_EQ(alloc.next().value(), 3u);
  EXPECT_EQ(alloc.allocated(), 3u);
}

TEST(Ids, AllocatorIsDeterministicAcrossInstances) {
  IdAllocator<FlowId> a, b;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Ids, HashWorksAsMapKey) {
  std::unordered_set<PeerId> set;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    set.insert(PeerId(v));
  }
  EXPECT_EQ(set.size(), 1000u);
  EXPECT_TRUE(set.contains(PeerId(500)));
  EXPECT_FALSE(set.contains(PeerId(1001)));
}

TEST(Ids, ToStringUsesFamilyPrefix) {
  EXPECT_EQ(to_string(NodeId(7)), "node#7");
  EXPECT_EQ(to_string(PeerId(7)), "peer#7");
  EXPECT_EQ(to_string(PipeId(1)), "pipe#1");
  EXPECT_EQ(to_string(GroupId(2)), "group#2");
  EXPECT_EQ(to_string(MessageId(3)), "msg#3");
  EXPECT_EQ(to_string(TaskId(4)), "task#4");
  EXPECT_EQ(to_string(TransferId(5)), "xfer#5");
  EXPECT_EQ(to_string(FlowId(6)), "flow#6");
  EXPECT_EQ(to_string(AdvertisementId(8)), "adv#8");
}

TEST(Ids, DistinctFamiliesAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, PeerId>);
  static_assert(!std::is_same_v<TaskId, TransferId>);
  SUCCEED();
}

}  // namespace
}  // namespace peerlab
