#include "peerlab/common/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace peerlab {
namespace {

TEST(Units, MegabytesConvertsToBytes) {
  EXPECT_EQ(megabytes(1.0), 1'000'000);
  EXPECT_EQ(megabytes(50.0), 50'000'000);
  EXPECT_EQ(megabytes(6.25), 6'250'000);
  EXPECT_EQ(megabytes(0.0), 0);
}

TEST(Units, KilobytesConvertsToBytes) {
  EXPECT_EQ(kilobytes(1.0), 1'000);
  EXPECT_EQ(kilobytes(64.0), 64'000);
}

TEST(Units, ToMegabytesRoundTrips) {
  EXPECT_DOUBLE_EQ(to_megabytes(megabytes(100.0)), 100.0);
  EXPECT_DOUBLE_EQ(to_megabytes(megabytes(6.25)), 6.25);
}

TEST(Units, WireTimeBasic) {
  // 1 MB at 8 Mbit/s = 8e6 bits / 8e6 bits/s = 1 s.
  EXPECT_DOUBLE_EQ(wire_time(megabytes(1.0), 8.0), 1.0);
  // 100 MB at 8 Mbit/s = 100 s.
  EXPECT_DOUBLE_EQ(wire_time(megabytes(100.0), 8.0), 100.0);
}

TEST(Units, WireTimeZeroRateIsInfinite) {
  EXPECT_TRUE(std::isinf(wire_time(megabytes(1.0), 0.0)));
  EXPECT_TRUE(std::isinf(wire_time(megabytes(1.0), -1.0)));
}

TEST(Units, RateForInvertsWireTime) {
  const Bytes size = megabytes(10.0);
  const MbitPerSec rate = 4.0;
  const Seconds t = wire_time(size, rate);
  EXPECT_NEAR(rate_for(size, t), rate, 1e-9);
}

TEST(Units, RateForZeroElapsedIsInfinite) {
  EXPECT_TRUE(std::isinf(rate_for(megabytes(1.0), 0.0)));
}

TEST(Units, MinutesRoundTrip) {
  EXPECT_DOUBLE_EQ(minutes(1.7), 102.0);
  EXPECT_DOUBLE_EQ(to_minutes(102.0), 1.7);
  EXPECT_DOUBLE_EQ(to_minutes(minutes(35.0)), 35.0);
}

}  // namespace
}  // namespace peerlab
