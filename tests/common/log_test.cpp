#include "peerlab/common/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace peerlab::log {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_level(Level::kTrace);
    set_sink([this](Level level, std::string_view line) {
      lines_.emplace_back(level, std::string(line));
    });
  }
  void TearDown() override {
    set_sink(nullptr);
    set_level(Level::kWarn);
  }
  std::vector<std::pair<Level, std::string>> lines_;
};

TEST_F(LogTest, EmitsFormattedLine) {
  PEERLAB_LOG(kInfo, "test-module") << "hello " << 42;
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].first, Level::kInfo);
  EXPECT_EQ(lines_[0].second, "[INFO] test-module: hello 42");
}

TEST_F(LogTest, LevelFilterSuppressesBelowThreshold) {
  set_level(Level::kError);
  PEERLAB_LOG(kDebug, "m") << "dropped";
  PEERLAB_LOG(kWarn, "m") << "dropped too";
  PEERLAB_LOG(kError, "m") << "kept";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].first, Level::kError);
}

TEST_F(LogTest, OffSuppressesEverything) {
  set_level(Level::kOff);
  PEERLAB_LOG(kError, "m") << "dropped";
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LogTest, LevelNames) {
  EXPECT_STREQ(level_name(Level::kTrace), "TRACE");
  EXPECT_STREQ(level_name(Level::kDebug), "DEBUG");
  EXPECT_STREQ(level_name(Level::kInfo), "INFO");
  EXPECT_STREQ(level_name(Level::kWarn), "WARN");
  EXPECT_STREQ(level_name(Level::kError), "ERROR");
}

TEST_F(LogTest, ReplacingSinkStopsDeliveryToOldSink) {
  std::vector<std::string> other;
  set_sink([&other](Level, std::string_view line) { other.emplace_back(line); });
  PEERLAB_LOG(kInfo, "m") << "to the new sink";
  EXPECT_TRUE(lines_.empty());  // fixture sink was replaced, not stacked
  ASSERT_EQ(other.size(), 1u);
  set_sink(nullptr);
}

TEST_F(LogTest, NullSinkRestoresStderr) {
  set_sink(nullptr);
  ::testing::internal::CaptureStderr();
  PEERLAB_LOG(kWarn, "restore") << "back on stderr";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  // The fixture sink must not see the line, and stderr gets the same
  // format the sink path would have produced.
  EXPECT_TRUE(lines_.empty());
  EXPECT_EQ(captured, "[WARN] restore: back on stderr\n");

  // A sink installed afterwards receives lines again (restore is not
  // one-way).
  set_sink([this](Level level, std::string_view line) {
    lines_.emplace_back(level, std::string(line));
  });
  PEERLAB_LOG(kWarn, "restore") << "back on the sink";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].second, "[WARN] restore: back on the sink");
}

TEST_F(LogTest, MacroDoesNotEvaluateArgsWhenFiltered) {
  set_level(Level::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("expensive");
  };
  PEERLAB_LOG(kDebug, "m") << expensive();
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace peerlab::log
