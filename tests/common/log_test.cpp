#include "peerlab/common/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace peerlab::log {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_level(Level::kTrace);
    set_sink([this](Level level, std::string_view line) {
      lines_.emplace_back(level, std::string(line));
    });
  }
  void TearDown() override {
    set_sink(nullptr);
    set_level(Level::kWarn);
  }
  std::vector<std::pair<Level, std::string>> lines_;
};

TEST_F(LogTest, EmitsFormattedLine) {
  PEERLAB_LOG(kInfo, "test-module") << "hello " << 42;
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].first, Level::kInfo);
  EXPECT_EQ(lines_[0].second, "[INFO] test-module: hello 42");
}

TEST_F(LogTest, LevelFilterSuppressesBelowThreshold) {
  set_level(Level::kError);
  PEERLAB_LOG(kDebug, "m") << "dropped";
  PEERLAB_LOG(kWarn, "m") << "dropped too";
  PEERLAB_LOG(kError, "m") << "kept";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].first, Level::kError);
}

TEST_F(LogTest, OffSuppressesEverything) {
  set_level(Level::kOff);
  PEERLAB_LOG(kError, "m") << "dropped";
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LogTest, LevelNames) {
  EXPECT_STREQ(level_name(Level::kTrace), "TRACE");
  EXPECT_STREQ(level_name(Level::kDebug), "DEBUG");
  EXPECT_STREQ(level_name(Level::kInfo), "INFO");
  EXPECT_STREQ(level_name(Level::kWarn), "WARN");
  EXPECT_STREQ(level_name(Level::kError), "ERROR");
}

TEST_F(LogTest, MacroDoesNotEvaluateArgsWhenFiltered) {
  set_level(Level::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("expensive");
  };
  PEERLAB_LOG(kDebug, "m") << expensive();
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace peerlab::log
