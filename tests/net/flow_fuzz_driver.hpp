#pragma once

// Differential transition fuzzer for the flow scheduler.
//
// One deterministic, seed-derived transition sequence — starts (plain,
// failover-on-abort, and batch-chaos-on-complete flavours), cancels,
// node crashes (abort_touching), link partitions (abort_between),
// brownouts (set_capacity_factor), time advances, and nested batches —
// is replayed against two *twin worlds*: a live incremental
// FlowScheduler and the map-based ReferenceFlowScheduler from
// waterfill_reference.hpp, each with its own Simulator and an
// identically-built Topology. After every transition the harness
// demands:
//
//   * bit-identical rates (memcmp on the doubles) for every live flow,
//   * identical remaining bytes, active sets and flow counts,
//   * identical event logs — every completion and abort, with the
//     flow id and the exact simulated time it fired at,
//   * identical clocks and abort victim counts.
//
// Randomized choices never read scheduler state (live-flow bookkeeping
// is replayed from the event log), so a divergence cannot desynchronize
// the sequence itself — the first differing bit is caught at the
// transition that produced it, with the seed in the failure message.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "peerlab/net/flow_scheduler.hpp"
#include "peerlab/net/topology.hpp"
#include "peerlab/sim/simulator.hpp"
#include "net/waterfill_reference.hpp"

namespace peerlab::net::fuzz {

struct FuzzEvent {
  char kind = '?';  // 'S'tart, 'C'omplete, 'A'bort
  std::uint64_t flow = 0;
  double time = 0.0;

  bool operator==(const FuzzEvent& other) const {
    return kind == other.kind && flow == other.flow &&
           std::memcmp(&time, &other.time, sizeof(time)) == 0;
  }
};

struct FuzzStats {
  int transitions = 0;
  int starts = 0;
  int cancels = 0;
  int crashes = 0;
  int partitions = 0;
  int brownouts = 0;
  int advances = 0;
  int batches = 0;
  int completions = 0;
  int aborts = 0;
};

template <typename SchedulerT>
struct FuzzWorld {
  FuzzWorld(std::uint64_t seed, const std::vector<NodeProfile>& profiles,
            FlowSchedulerConfig config)
      : sim(seed), topo(sim::Rng(seed)) {
    for (const auto& profile : profiles) nodes.push_back(topo.add_node(profile));
    scheduler.emplace(sim, topo, config);
  }

  sim::Simulator sim;
  Topology topo;
  std::vector<NodeId> nodes;
  std::optional<SchedulerT> scheduler;
  std::vector<FuzzEvent> log;
};

/// What a single start transition does, decided by the driver's RNG
/// only — both worlds execute the identical plan.
struct StartPlan {
  std::size_t src = 0;
  std::size_t dst = 1;
  Bytes size = 0;
  double rate_cap = 0.0;
  // 0 = plain; 1 = failover: on_abort starts a derived replacement;
  // 2 = chaos: on_complete opens a batch, starts a replacement and
  //     aborts the completed flow's node pair inside the guard (the
  //     re-entrant churn shape FileService failover produces).
  int flavor = 0;
};

template <typename W>
void start_plan_in(W& world, const StartPlan& plan);

/// Replacement spec derived purely from the dying flow's id, so both
/// worlds regenerate the identical flow without driver involvement.
template <typename W>
void start_replacement_in(W& world, std::uint64_t from_id) {
  const std::size_t n = world.nodes.size();
  StartPlan plan;
  plan.src = static_cast<std::size_t>((from_id * 2654435761u) % n);
  plan.dst = (plan.src + 1 + static_cast<std::size_t>(from_id % (n - 1))) % n;
  if (plan.dst == plan.src) plan.dst = (plan.src + 1) % n;
  plan.size = static_cast<Bytes>(64 + from_id % 192) * 1024;
  plan.flavor = 0;
  start_plan_in(world, plan);
}

template <typename W>
void start_plan_in(W& world, const StartPlan& plan) {
  auto id_holder = std::make_shared<std::uint64_t>(0);
  auto* log = &world.log;
  auto* sim = &world.sim;
  auto* scheduler = &*world.scheduler;
  auto* self = &world;

  FlowSpec spec;
  spec.src = world.nodes[plan.src];
  spec.dst = world.nodes[plan.dst];
  spec.size = plan.size;
  spec.rate_cap = plan.rate_cap;
  const NodeId src = spec.src;
  const NodeId dst = spec.dst;

  if (plan.flavor == 2) {
    spec.on_complete = [log, sim, scheduler, self, id_holder, src, dst](Seconds) {
      log->push_back({'C', *id_holder, sim->now()});
      // Re-entrant churn under an open guard: replacement start and a
      // pair abort coalesce into one deferred re-level.
      const auto batch = scheduler->start_batch();
      start_replacement_in(*self, *id_holder);
      scheduler->abort_between(src, dst);
    };
  } else {
    spec.on_complete = [log, sim, id_holder](Seconds) {
      log->push_back({'C', *id_holder, sim->now()});
    };
  }
  if (plan.flavor == 1) {
    spec.on_abort = [log, sim, self, id_holder](Seconds) {
      log->push_back({'A', *id_holder, sim->now()});
      start_replacement_in(*self, *id_holder);
    };
  } else {
    spec.on_abort = [log, sim, id_holder](Seconds) {
      log->push_back({'A', *id_holder, sim->now()});
    };
  }

  const FlowId id = scheduler->start(std::move(spec));
  *id_holder = id.value();
  log->push_back({'S', id.value(), sim->now()});
}

class DifferentialFuzzer {
 public:
  struct Options {
    int transitions = 5000;
  };

  explicit DifferentialFuzzer(std::uint64_t seed)
      : DifferentialFuzzer(seed, Options{}) {}

  DifferentialFuzzer(std::uint64_t seed, Options options)
      : seed_(seed), options_(options), rng_(seed) {
    const int node_count = pick(4, 12);
    const double caps[] = {0.8, 2.0, 4.0, 8.0, 33.6, 100.0};
    std::vector<NodeProfile> profiles;
    for (int i = 0; i < node_count; ++i) {
      NodeProfile p;
      p.hostname = "n" + std::to_string(i);
      p.uplink_mbps = caps[pick(0, 5)];
      p.downlink_mbps = caps[pick(0, 5)];
      profiles.push_back(p);
    }
    const double scales[] = {1.0, 0.5, 0.37};
    FlowSchedulerConfig config;
    config.capacity_scale = scales[pick(0, 2)];
    incremental_.emplace(seed, profiles, config);
    reference_.emplace(seed, profiles, config);
  }

  /// Runs the whole sequence. Raises gtest failures (tagged with the
  /// seed) at the first diverging transition and stops early.
  FuzzStats run() {
    for (int t = 0; t < options_.transitions; ++t) {
      ++stats_.transitions;
      one_transition();
      compare();
      if (::testing::Test::HasFailure()) break;
    }
    return stats_;
  }

 private:
  using IncWorld = FuzzWorld<FlowScheduler>;
  using RefWorld = FuzzWorld<reference::ReferenceFlowScheduler>;

  int pick(int lo, int hi) { return std::uniform_int_distribution<int>(lo, hi)(rng_); }

  std::size_t node_count() const { return incremental_->nodes.size(); }

  StartPlan make_start_plan() {
    const double caps[] = {0.8, 2.0, 4.0, 8.0, 33.6, 100.0};
    StartPlan plan;
    plan.src = static_cast<std::size_t>(pick(0, static_cast<int>(node_count()) - 1));
    plan.dst = plan.src;
    while (plan.dst == plan.src) {
      plan.dst = static_cast<std::size_t>(pick(0, static_cast<int>(node_count()) - 1));
    }
    plan.size = static_cast<Bytes>(pick(1, 48)) * 128 * 1024;
    plan.rate_cap = pick(0, 3) == 0 ? caps[pick(0, 5)] / 3.0 : 0.0;
    const int flavor_draw = pick(0, 9);
    plan.flavor = flavor_draw < 7 ? 0 : (flavor_draw < 9 ? 1 : 2);
    return plan;
  }

  void do_start() {
    const StartPlan plan = make_start_plan();
    start_plan_in(*incremental_, plan);
    start_plan_in(*reference_, plan);
  }

  void do_cancel() {
    if (live_.empty()) return do_start();
    ++stats_.cancels;
    const std::size_t victim = static_cast<std::size_t>(pick(0, static_cast<int>(live_.size()) - 1));
    const std::uint64_t id = live_[victim];
    incremental_->scheduler->cancel(FlowId(id));
    reference_->scheduler->cancel(FlowId(id));
    cancelled_.push_back(id);
  }

  void do_crash() {
    ++stats_.crashes;
    const auto node = static_cast<std::size_t>(pick(0, static_cast<int>(node_count()) - 1));
    const std::size_t a = incremental_->scheduler->abort_touching(incremental_->nodes[node]);
    const std::size_t b = reference_->scheduler->abort_touching(reference_->nodes[node]);
    EXPECT_EQ(a, b) << "abort_touching victim count diverged, seed " << seed_;
  }

  void do_partition() {
    ++stats_.partitions;
    const auto x = static_cast<std::size_t>(pick(0, static_cast<int>(node_count()) - 1));
    std::size_t y = x;
    while (y == x) y = static_cast<std::size_t>(pick(0, static_cast<int>(node_count()) - 1));
    const std::size_t a =
        incremental_->scheduler->abort_between(incremental_->nodes[x], incremental_->nodes[y]);
    const std::size_t b =
        reference_->scheduler->abort_between(reference_->nodes[x], reference_->nodes[y]);
    EXPECT_EQ(a, b) << "abort_between victim count diverged, seed " << seed_;
  }

  void do_brownout() {
    ++stats_.brownouts;
    const auto node = static_cast<std::size_t>(pick(0, static_cast<int>(node_count()) - 1));
    const double factors[] = {0.25, 0.5, 0.75, 1.0};
    const double factor = factors[pick(0, 3)];
    incremental_->scheduler->set_capacity_factor(incremental_->nodes[node], factor);
    reference_->scheduler->set_capacity_factor(reference_->nodes[node], factor);
  }

  void do_advance() {
    ++stats_.advances;
    const double dt = 0.05 * pick(1, 20);
    const Seconds until = incremental_->sim.now() + dt;
    incremental_->sim.run_until(until);
    reference_->sim.run_until(until);
  }

  void do_batch(int depth) {
    ++stats_.batches;
    const auto inc_guard = incremental_->scheduler->start_batch();
    const auto ref_guard = reference_->scheduler->start_batch();
    const int ops = pick(2, 6);
    for (int i = 0; i < ops; ++i) {
      switch (pick(0, depth == 0 ? 5 : 4)) {
        case 0:
        case 1:
          do_start();
          break;
        case 2:
          do_cancel();
          break;
        case 3:
          pick(0, 1) == 0 ? do_crash() : do_partition();
          break;
        case 4:
          do_brownout();
          break;
        default:
          do_batch(depth + 1);  // nested guard
          break;
      }
    }
  }

  void one_transition() {
    const int draw = pick(0, 99);
    if (draw < 40) {
      do_start();
    } else if (draw < 55) {
      do_cancel();
    } else if (draw < 63) {
      do_crash();
    } else if (draw < 68) {
      do_partition();
    } else if (draw < 76) {
      do_brownout();
    } else if (draw < 90) {
      do_advance();
    } else {
      do_batch(0);
    }
  }

  /// Replays fresh log entries into the live set, then cross-checks
  /// every observable of both worlds.
  void compare() {
    ASSERT_EQ(incremental_->log.size(), reference_->log.size())
        << "event log length diverged, seed " << seed_ << " after transition "
        << stats_.transitions;
    for (std::size_t i = log_cursor_; i < incremental_->log.size(); ++i) {
      const FuzzEvent& a = incremental_->log[i];
      const FuzzEvent& b = reference_->log[i];
      ASSERT_TRUE(a == b) << "event " << i << " diverged: incremental {" << a.kind << " flow "
                          << a.flow << " t=" << a.time << "} vs reference {" << b.kind
                          << " flow " << b.flow << " t=" << b.time << "}, seed " << seed_;
      if (a.kind == 'S') {
        live_.push_back(a.flow);
        ++stats_.starts;
      } else {
        const auto it = std::find(live_.begin(), live_.end(), a.flow);
        ASSERT_NE(it, live_.end()) << "event for unknown flow " << a.flow << ", seed " << seed_;
        live_.erase(it);
        a.kind == 'C' ? ++stats_.completions : ++stats_.aborts;
      }
    }
    log_cursor_ = incremental_->log.size();
    for (const std::uint64_t id : cancelled_) {
      // A cancel target may already be gone: aborted by an earlier op
      // inside the same batch transition. cancel() was a no-op then.
      const auto it = std::find(live_.begin(), live_.end(), id);
      if (it != live_.end()) live_.erase(it);
    }
    cancelled_.clear();

    const double now_inc = incremental_->sim.now();
    const double now_ref = reference_->sim.now();
    ASSERT_EQ(now_inc, now_ref) << "clocks diverged, seed " << seed_;
    ASSERT_EQ(incremental_->scheduler->active_flows(), live_.size())
        << "incremental active set diverged from log replay, seed " << seed_;
    ASSERT_EQ(reference_->scheduler->active_flows(), live_.size())
        << "reference active set diverged from log replay, seed " << seed_;

    for (const std::uint64_t id : live_) {
      const double a = incremental_->scheduler->current_rate(FlowId(id));
      const double b = reference_->scheduler->current_rate(FlowId(id));
      ASSERT_EQ(std::memcmp(&a, &b, sizeof(a)), 0)
          << "rate of flow " << id << " diverged: incremental " << a << " vs reference " << b
          << ", seed " << seed_ << " after transition " << stats_.transitions;
      ASSERT_EQ(incremental_->scheduler->remaining_bytes(FlowId(id)),
                reference_->scheduler->remaining_bytes(FlowId(id)))
          << "remaining bytes of flow " << id << " diverged, seed " << seed_;
    }
    for (std::size_t i = 0; i < incremental_->nodes.size(); ++i) {
      ASSERT_EQ(incremental_->scheduler->capacity_factor(incremental_->nodes[i]),
                reference_->scheduler->capacity_factor(reference_->nodes[i]))
          << "capacity factor diverged at node " << i << ", seed " << seed_;
    }
  }

  std::uint64_t seed_;
  Options options_;
  std::mt19937_64 rng_;
  std::optional<IncWorld> incremental_;
  std::optional<RefWorld> reference_;
  std::vector<std::uint64_t> live_;       // replayed from the event log
  std::vector<std::uint64_t> cancelled_;  // driver-initiated removals
  std::size_t log_cursor_ = 0;
  FuzzStats stats_;
};

}  // namespace peerlab::net::fuzz
