#pragma once

// The reference max-min water-filling semantics, in exactly one place.
//
// `reference_rates` is the seed implementation's recompute_rates(),
// retained as the oracle (std::map capacity/user tables, freeze set
// decided from the round-start snapshot), applied independently to each
// connected component of the flow/resource sharing graph. Max-min
// fairness decomposes by component, and decomposing *before* filling is
// load-bearing: the freeze tolerance (kEpsRate) would otherwise couple
// near-tied levels of independent components — e.g. a per-flow cap of
// 4/3 in one component freezing a flow whose fair share is
// 2 - 1/3 - 1/3 (one ulp away) in another — making rates depend on
// flows they share no resource with. Component-local filling is the
// semantics FlowScheduler promises ("untouched components keep their
// rates byte for byte"), so the oracle pins the same decomposition.
//
// `ReferenceFlowScheduler` wraps the oracle in the scheduler's full
// transition surface (start/cancel/abort/brownout/batch + fluid
// advance and completion timers) using byte-for-byte the same
// floating-point expressions as FlowScheduler, so a differential
// harness can replay one transition sequence through both and demand
// bit-identical rates and identical completion behaviour. Everything
// here is deliberately simple and map-based — the readable spec the
// incremental implementation is held to.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "peerlab/common/check.hpp"
#include "peerlab/common/ids.hpp"
#include "peerlab/common/units.hpp"
#include "peerlab/net/flow_scheduler.hpp"
#include "peerlab/net/topology.hpp"
#include "peerlab/sim/simulator.hpp"

namespace peerlab::net::reference {

constexpr double kRefEpsBits = 1.0;    // flows within 1 bit are done
constexpr double kRefEpsRate = 1e-12;  // Mbit/s comparison slack
constexpr double kRefInf = std::numeric_limits<double>::infinity();

struct RefFlow {
  NodeId src;
  NodeId dst;
  double rate_cap = 0.0;  // <= 0 means uncapped
};

/// Brownout factor lookup; nodes absent from the map are at 1.0.
using CapacityFactors = std::map<std::uint64_t, double>;

namespace detail {

/// The retained seed water-fill over one flow set (one connected
/// component). `flows` is keyed by FlowId value, i.e. iterated in
/// FlowId order — the same order the map-based scheduler iterated its
/// flow map in.
inline void waterfill_component(const std::map<std::uint64_t, RefFlow>& flows,
                                const Topology& topo, double capacity_scale,
                                const CapacityFactors& factors,
                                std::map<std::uint64_t, double>& rates) {
  const auto factor_of = [&](std::uint64_t node) {
    const auto it = factors.find(node);
    return it == factors.end() ? 1.0 : it->second;
  };
  std::map<std::uint64_t, double> capacity;
  for (const auto& [id, f] : flows) {
    const auto& src = topo.node(f.src).profile();
    const auto& dst = topo.node(f.dst).profile();
    capacity.emplace(f.src.value() * 2,
                     src.uplink_mbps * capacity_scale * factor_of(f.src.value()));
    capacity.emplace(f.dst.value() * 2 + 1,
                     dst.downlink_mbps * capacity_scale * factor_of(f.dst.value()));
  }

  struct Pending {
    std::uint64_t id;
    std::uint64_t up_key;
    std::uint64_t down_key;
    double cap;
  };
  std::vector<Pending> unfrozen;
  unfrozen.reserve(flows.size());
  for (const auto& [id, f] : flows) {
    unfrozen.push_back(Pending{id, f.src.value() * 2, f.dst.value() * 2 + 1,
                               f.rate_cap > 0.0 ? f.rate_cap : kRefInf});
  }

  while (!unfrozen.empty()) {
    std::map<std::uint64_t, int> users;
    for (const auto& p : unfrozen) {
      ++users[p.up_key];
      ++users[p.down_key];
    }
    const auto fair = [&](std::uint64_t key) {
      return std::max(0.0, capacity[key]) / static_cast<double>(users[key]);
    };
    double share = kRefInf;
    for (const auto& [key, n] : users) {
      share = std::min(share, fair(key));
    }
    double min_cap = kRefInf;
    for (const auto& p : unfrozen) min_cap = std::min(min_cap, p.cap);
    const double level = std::min(share, min_cap);

    std::vector<Pending> still;
    std::vector<Pending> frozen;
    still.reserve(unfrozen.size());
    for (const auto& p : unfrozen) {
      const bool at_cap = p.cap <= level + kRefEpsRate;
      const bool at_bottleneck = fair(p.up_key) <= level + kRefEpsRate ||
                                 fair(p.down_key) <= level + kRefEpsRate;
      if (at_cap || at_bottleneck) {
        frozen.push_back(p);
      } else {
        still.push_back(p);
      }
    }
    PEERLAB_CHECK_MSG(!frozen.empty(), "reference water-filling stalled");
    for (const auto& p : frozen) {
      const double rate = std::min(level, p.cap);
      rates[p.id] = rate;
      capacity[p.up_key] -= rate;
      capacity[p.down_key] -= rate;
    }
    unfrozen = std::move(still);
  }
}

}  // namespace detail

/// Max-min fair rates for `flows`: partition into connected components
/// (flows are adjacent when they share an uplink or a downlink), then
/// run the retained water-fill on each component independently.
inline std::map<std::uint64_t, double> reference_rates(
    const std::map<std::uint64_t, RefFlow>& flows, const Topology& topo,
    double capacity_scale, const CapacityFactors& factors = {}) {
  std::map<std::uint64_t, double> rates;
  if (flows.empty()) return rates;

  // resource key -> flow ids using it
  std::map<std::uint64_t, std::vector<std::uint64_t>> members;
  for (const auto& [id, f] : flows) {
    members[f.src.value() * 2].push_back(id);
    members[f.dst.value() * 2 + 1].push_back(id);
  }

  std::map<std::uint64_t, bool> visited;
  for (const auto& [id, f] : flows) {
    if (visited[id]) continue;
    std::map<std::uint64_t, RefFlow> component;
    std::vector<std::uint64_t> frontier{id};
    visited[id] = true;
    while (!frontier.empty()) {
      const std::uint64_t cur = frontier.back();
      frontier.pop_back();
      const RefFlow& cf = flows.at(cur);
      component.emplace(cur, cf);
      for (const std::uint64_t key : {cf.src.value() * 2, cf.dst.value() * 2 + 1}) {
        for (const std::uint64_t peer : members[key]) {
          if (!visited[peer]) {
            visited[peer] = true;
            frontier.push_back(peer);
          }
        }
      }
    }
    detail::waterfill_component(component, topo, capacity_scale, factors, rates);
  }
  return rates;
}

/// A drop-in FlowScheduler twin built directly on the oracle: every
/// transition recomputes *all* rates from scratch with
/// `reference_rates`, and the fluid advance / completion-timer /
/// abort-callback plumbing mirrors FlowScheduler expression for
/// expression. Intended for differential testing only — O(everything)
/// per transition, allocates freely.
class ReferenceFlowScheduler {
 public:
  ReferenceFlowScheduler(sim::Simulator& sim, const Topology& topo,
                         FlowSchedulerConfig config = {})
      : sim_(sim), topo_(topo), config_(config) {}

  ReferenceFlowScheduler(const ReferenceFlowScheduler&) = delete;
  ReferenceFlowScheduler& operator=(const ReferenceFlowScheduler&) = delete;

  FlowId start(FlowSpec spec) {
    PEERLAB_CHECK_MSG(spec.size > 0, "flow size must be positive");
    PEERLAB_CHECK_MSG(topo_.contains(spec.src) && topo_.contains(spec.dst),
                      "flow endpoints must exist");
    advance_to_now();
    const FlowId id = ids_.next();
    Flow flow;
    flow.spec = RefFlow{spec.src, spec.dst, spec.rate_cap};
    flow.remaining_bits = static_cast<double>(spec.size) * 8.0;
    flow.started = sim_.now();
    flow.on_complete = std::move(spec.on_complete);
    flow.on_abort = std::move(spec.on_abort);
    flows_.emplace(id.value(), std::move(flow));
    settle();
    return id;
  }

  void cancel(FlowId id) {
    const auto it = flows_.find(id.value());
    if (it == flows_.end()) return;
    advance_to_now();
    flows_.erase(it);
    settle();
  }

  class Batch {
   public:
    explicit Batch(ReferenceFlowScheduler& scheduler) : scheduler_(scheduler) {
      ++scheduler_.batch_depth_;
    }
    ~Batch() { scheduler_.end_batch(); }
    Batch(const Batch&) = delete;
    Batch& operator=(const Batch&) = delete;

   private:
    ReferenceFlowScheduler& scheduler_;
  };
  [[nodiscard]] Batch start_batch() { return Batch(*this); }

  std::size_t abort_touching(NodeId node) {
    return abort_where([node](const RefFlow& f) { return f.src == node || f.dst == node; });
  }

  std::size_t abort_between(NodeId a, NodeId b) {
    return abort_where([a, b](const RefFlow& f) {
      return (f.src == a && f.dst == b) || (f.src == b && f.dst == a);
    });
  }

  void set_capacity_factor(NodeId node, double factor) {
    PEERLAB_CHECK_MSG(topo_.contains(node), "brownout target must exist");
    PEERLAB_CHECK_MSG(factor > 0.0 && factor <= 1.0, "capacity factor must be in (0, 1]");
    advance_to_now();
    factors_[node.value()] = factor;
    settle();
  }

  [[nodiscard]] double capacity_factor(NodeId node) const noexcept {
    const auto it = factors_.find(node.value());
    return it == factors_.end() ? 1.0 : it->second;
  }

  [[nodiscard]] bool active(FlowId id) const noexcept {
    return flows_.count(id.value()) > 0;
  }
  [[nodiscard]] std::size_t active_flows() const noexcept { return flows_.size(); }

  [[nodiscard]] MbitPerSec current_rate(FlowId id) const noexcept {
    const auto it = flows_.find(id.value());
    return it == flows_.end() ? 0.0 : it->second.rate;
  }

  [[nodiscard]] Bytes remaining_bytes(FlowId id) const noexcept {
    const auto it = flows_.find(id.value());
    return it == flows_.end() ? 0 : static_cast<Bytes>(it->second.remaining_bits / 8.0);
  }

 private:
  struct Flow {
    RefFlow spec;
    double remaining_bits = 0.0;
    double rate = 0.0;
    Seconds started = 0.0;
    std::function<void(Seconds)> on_complete;
    std::function<void(Seconds)> on_abort;
  };

  void advance_to_now() {
    const Seconds now = sim_.now();
    const Seconds dt = now - last_advance_;
    last_advance_ = now;
    if (dt <= 0.0) return;
    for (auto& [id, f] : flows_) {
      f.remaining_bits = std::max(0.0, f.remaining_bits - f.rate * 1e6 * dt);
    }
  }

  void recompute_rates() {
    std::map<std::uint64_t, RefFlow> specs;
    for (const auto& [id, f] : flows_) specs.emplace(id, f.spec);
    const auto rates = reference_rates(specs, topo_, config_.capacity_scale, factors_);
    for (auto& [id, f] : flows_) f.rate = rates.at(id);
  }

  void reschedule() {
    timer_.cancel();
    if (flows_.empty()) return;
    double eta = kRefInf;
    for (const auto& [id, f] : flows_) {
      if (f.rate <= kRefEpsRate) continue;
      eta = std::min(eta, f.remaining_bits / (f.rate * 1e6));
    }
    PEERLAB_CHECK_MSG(std::isfinite(eta), "active flows but no finite completion time");
    timer_ = sim_.schedule(std::max(0.0, eta), [this] { on_timer(); });
  }

  void on_timer() {
    advance_to_now();
    std::vector<std::pair<Seconds, std::function<void(Seconds)>>> done;
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (it->second.remaining_bits <= kRefEpsBits) {
        done.emplace_back(sim_.now() - it->second.started, std::move(it->second.on_complete));
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
    recompute_rates();
    reschedule();
    for (auto& [duration, callback] : done) {
      if (callback) callback(duration);
    }
  }

  void settle() {
    if (batch_depth_ > 0) {
      batch_dirty_ = true;
      return;
    }
    recompute_rates();
    reschedule();
  }

  void end_batch() {
    if (--batch_depth_ > 0) return;
    if (!batch_dirty_) return;
    batch_dirty_ = false;
    advance_to_now();
    recompute_rates();
    reschedule();
  }

  template <typename Pred>
  std::size_t abort_where(Pred pred) {
    advance_to_now();
    std::vector<std::pair<Seconds, std::function<void(Seconds)>>> aborted;
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (pred(it->second.spec)) {
        aborted.emplace_back(sim_.now() - it->second.started, std::move(it->second.on_abort));
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
    if (!aborted.empty()) settle();
    for (auto& [elapsed, callback] : aborted) {
      if (callback) callback(elapsed);
    }
    return aborted.size();
  }

  sim::Simulator& sim_;
  const Topology& topo_;
  FlowSchedulerConfig config_;
  std::map<std::uint64_t, Flow> flows_;  // FlowId order
  CapacityFactors factors_;
  IdAllocator<FlowId> ids_;
  sim::EventHandle timer_;
  Seconds last_advance_ = 0.0;
  int batch_depth_ = 0;
  bool batch_dirty_ = false;
};

}  // namespace peerlab::net::reference
