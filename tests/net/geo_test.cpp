#include "peerlab/net/geo.hpp"

#include <gtest/gtest.h>

namespace peerlab::net {
namespace {

// Reference city coordinates.
constexpr GeoPoint kBarcelona{41.39, 2.17};
constexpr GeoPoint kBerlin{52.52, 13.40};
constexpr GeoPoint kHelsinki{60.17, 24.94};
constexpr GeoPoint kSeattle{47.61, -122.33};

TEST(Geo, ZeroDistanceToSelf) {
  EXPECT_DOUBLE_EQ(great_circle_km(kBerlin, kBerlin), 0.0);
}

TEST(Geo, DistanceIsSymmetric) {
  EXPECT_DOUBLE_EQ(great_circle_km(kBarcelona, kBerlin), great_circle_km(kBerlin, kBarcelona));
}

TEST(Geo, KnownCityPairDistances) {
  // Barcelona <-> Berlin is roughly 1500 km.
  EXPECT_NEAR(great_circle_km(kBarcelona, kBerlin), 1500.0, 80.0);
  // Barcelona <-> Helsinki is roughly 2600 km.
  EXPECT_NEAR(great_circle_km(kBarcelona, kHelsinki), 2600.0, 150.0);
  // Berlin <-> Seattle crosses the Atlantic: roughly 8100 km.
  EXPECT_NEAR(great_circle_km(kBerlin, kSeattle), 8100.0, 300.0);
}

TEST(Geo, TriangleInequalityHolds) {
  const double ab = great_circle_km(kBarcelona, kBerlin);
  const double bc = great_circle_km(kBerlin, kHelsinki);
  const double ac = great_circle_km(kBarcelona, kHelsinki);
  EXPECT_LE(ac, ab + bc + 1e-9);
}

TEST(Geo, PropagationDelayScalesWithDistance) {
  const Seconds near = propagation_delay(kBarcelona, kBerlin);
  const Seconds far = propagation_delay(kBarcelona, kSeattle);
  EXPECT_LT(near, far);
  // Intra-Europe one-way delay should be single-digit milliseconds plus
  // the router allowance.
  EXPECT_GT(near, 0.004);
  EXPECT_LT(near, 0.020);
}

TEST(Geo, RouterOverheadIsAdditive) {
  const Seconds base = propagation_delay(kBarcelona, kBerlin, 0.0);
  const Seconds padded = propagation_delay(kBarcelona, kBerlin, 0.010);
  EXPECT_NEAR(padded - base, 0.010, 1e-12);
}

TEST(Geo, AntipodalDistanceIsBounded) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  // Half the Earth's circumference, ~20015 km.
  EXPECT_NEAR(great_circle_km(a, b), 20015.0, 100.0);
}

}  // namespace
}  // namespace peerlab::net
