#include "peerlab/net/network.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

namespace peerlab::net {
namespace {

NodeProfile host(const std::string& name, Seconds control_mean = 0.05) {
  NodeProfile p;
  p.hostname = name;
  p.uplink_mbps = 8.0;
  p.downlink_mbps = 8.0;
  p.control_delay_mean = control_mean;
  p.control_delay_sigma = 0.0;  // deterministic for exact assertions
  p.loss_per_megabyte = 0.0;
  return p;
}

Network make_network(sim::Simulator& sim, std::vector<NodeProfile> hosts,
                     NetworkConfig cfg = {}) {
  Topology topo(sim.rng().fork(1));
  for (auto& h : hosts) topo.add_node(std::move(h));
  return Network(sim, std::move(topo), cfg);
}

TEST(Network, DatagramArrivesAfterControlDelay) {
  sim::Simulator sim(1);
  NetworkConfig cfg;
  cfg.datagram_loss = 0.0;
  auto net = make_network(sim, {host("a"), host("b", 0.5)}, cfg);
  std::optional<Seconds> arrival;
  net.send_datagram(NodeId(1), NodeId(2), kilobytes(1.0), [&] { arrival = sim.now(); });
  sim.run();
  ASSERT_TRUE(arrival.has_value());
  // propagation (loopback-scale, same location) + 0.5 control + 1 ms serialization.
  EXPECT_NEAR(*arrival, 0.505, 0.01);
  EXPECT_EQ(net.datagrams_sent(), 1u);
  EXPECT_EQ(net.datagrams_lost(), 0u);
}

TEST(Network, DatagramLossSuppressesDelivery) {
  sim::Simulator sim(7);
  NetworkConfig cfg;
  cfg.datagram_loss = 1.0 - 1e-9;  // ~always lost
  auto net = make_network(sim, {host("a"), host("b")}, cfg);
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    net.send_datagram(NodeId(1), NodeId(2), kilobytes(1.0), [&] { ++delivered; });
  }
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.datagrams_lost(), 50u);
}

TEST(Network, DatagramLossRateIsApproximatelyConfigured) {
  sim::Simulator sim(11);
  NetworkConfig cfg;
  cfg.datagram_loss = 0.2;
  auto net = make_network(sim, {host("a"), host("b")}, cfg);
  int delivered = 0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    net.send_datagram(NodeId(1), NodeId(2), kilobytes(1.0), [&] { ++delivered; });
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(delivered) / kN, 0.8, 0.03);
}

TEST(Network, BulkMessageCompletesAtDegradedRate) {
  sim::Simulator sim(1);
  auto net = make_network(sim, {host("a"), host("b")});
  std::optional<Seconds> elapsed;
  bool ok = false;
  net.start_message(NodeId(1), NodeId(2), megabytes(8.0), [&](bool success, Seconds t) {
    ok = success;
    elapsed = t;
  });
  sim.run();
  ASSERT_TRUE(elapsed.has_value());
  EXPECT_TRUE(ok);
  // 8 MB at degradation factor 1/2 of 8 Mbit/s = 4 Mbit/s -> 16 s.
  EXPECT_NEAR(*elapsed, 16.0, 0.1);
}

TEST(Network, SmallBulkMessageSeesNominalRate) {
  sim::Simulator sim(1);
  auto net = make_network(sim, {host("a"), host("b")});
  std::optional<Seconds> elapsed;
  net.start_message(NodeId(1), NodeId(2), kilobytes(64.0),
                    [&](bool, Seconds t) { elapsed = t; });
  sim.run();
  ASSERT_TRUE(elapsed.has_value());
  // 64 KB = 0.512 Mbit at 8 Mbit/s = 64 ms, plus propagation slack.
  EXPECT_NEAR(*elapsed, 0.064, 0.01);
}

TEST(Network, LossyDestinationFailsSomeMessagesPartWay) {
  sim::Simulator sim(3);
  auto lossy = host("b");
  lossy.loss_per_megabyte = 0.05;
  auto net = make_network(sim, {host("a"), lossy});
  int okc = 0, fail = 0;
  std::vector<Seconds> fail_times;
  for (int i = 0; i < 60; ++i) {
    sim.schedule(static_cast<double>(i) * 100.0, [&] {
      net.start_message(NodeId(1), NodeId(2), megabytes(10.0), [&](bool success, Seconds t) {
        if (success) {
          ++okc;
        } else {
          ++fail;
          fail_times.push_back(t);
        }
      });
    });
  }
  sim.run();
  EXPECT_GT(okc, 0);
  EXPECT_GT(fail, 0);  // (1 - 0.05)^10 ~ 0.6 survival, expect failures
  EXPECT_EQ(net.messages_lost(), static_cast<std::uint64_t>(fail));
  // Failures burn a fraction of the full wire time, never more than a
  // successful transfer takes.
  for (const Seconds t : fail_times) {
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, 30.0);
  }
}

TEST(Network, WholeFileVersusPartsShapeMatchesPaperFigure5) {
  // The headline phenomenon: a 100 MB monolith is drastically slower
  // than 16 sequential 6.25 MB parts on the same path.
  sim::Simulator sim(5);
  auto net = make_network(sim, {host("a"), host("b")});

  Seconds whole_time = 0.0;
  net.start_message(NodeId(1), NodeId(2), megabytes(100.0),
                    [&](bool, Seconds t) { whole_time = t; });
  sim.run();

  sim::Simulator sim2(5);
  auto net2 = make_network(sim2, {host("a"), host("b")});
  Seconds parts_time = 0.0;
  int remaining = 16;
  std::function<void()> send_next = [&] {
    net2.start_message(NodeId(1), NodeId(2), megabytes(6.25), [&](bool, Seconds) {
      if (--remaining > 0) {
        send_next();
      } else {
        parts_time = sim2.now();
      }
    });
  };
  send_next();
  sim2.run();

  EXPECT_GT(whole_time / parts_time, 8.0);
  EXPECT_LT(whole_time / parts_time, 40.0);
}

TEST(Network, SampleControlDelayTracksDestinationProfile) {
  sim::Simulator sim(1);
  auto net = make_network(sim, {host("a", 0.05), host("slow", 27.0)});
  const Seconds fast = net.sample_control_delay(NodeId(2), NodeId(1));
  const Seconds slow = net.sample_control_delay(NodeId(1), NodeId(2));
  EXPECT_LT(fast, 1.0);
  EXPECT_GT(slow, 20.0);
}

TEST(Network, CancelMessageSuppressesCallback) {
  sim::Simulator sim(1);
  auto net = make_network(sim, {host("a"), host("b")});
  bool fired = false;
  const FlowId id = net.start_message(NodeId(1), NodeId(2), megabytes(8.0),
                                      [&](bool, Seconds) { fired = true; });
  sim.schedule(1.0, [&] { net.cancel_message(id); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Network, BrownoutSlowsTransferAndLeavesATraceRecord) {
  sim::Simulator sim(1);
  NetworkConfig cfg;
  cfg.degradation.s0 = 1000 * kGigabyte;  // no large-message cap: exact arithmetic
  auto net = make_network(sim, {host("a"), host("b")}, cfg);
  sim::Tracer tracer;
  net.set_tracer(&tracer);
  std::optional<Seconds> done;
  // 1 MB at 8 Mbit/s finishes in 1 s unbrowned; halving the source's
  // capacity at t = 0.5 stretches the remaining half to 1 s.
  net.start_message(NodeId(1), NodeId(2), megabytes(1.0),
                    [&](bool ok, Seconds elapsed) {
                      EXPECT_TRUE(ok);
                      done = elapsed;
                    });
  sim.schedule(0.5, [&] { net.set_capacity_factor(NodeId(1), 0.5); });
  sim.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_NEAR(*done, 1.5, 0.01);
  EXPECT_EQ(tracer.count_label("node-brownout"), 1u);
}

TEST(Network, CountersTrackActivity) {
  sim::Simulator sim(1);
  NetworkConfig cfg;
  cfg.datagram_loss = 0.0;
  auto net = make_network(sim, {host("a"), host("b")}, cfg);
  net.send_datagram(NodeId(1), NodeId(2), 100, [] {});
  net.start_message(NodeId(1), NodeId(2), megabytes(1.0), [](bool, Seconds) {});
  sim.run();
  EXPECT_EQ(net.datagrams_sent(), 1u);
  EXPECT_EQ(net.messages_started(), 1u);
  EXPECT_EQ(net.messages_lost(), 0u);
}

}  // namespace
}  // namespace peerlab::net
