#include "peerlab/net/node.hpp"

#include <gtest/gtest.h>

#include "peerlab/common/check.hpp"

namespace peerlab::net {
namespace {

NodeProfile test_profile() {
  NodeProfile p;
  p.hostname = "test.example.org";
  p.cpu_ghz = 1.2;
  p.base_load = 0.3;
  p.load_jitter = 0.1;
  p.control_delay_mean = 0.5;
  p.control_delay_sigma = 0.35;
  p.loss_per_megabyte = 0.01;
  return p;
}

TEST(Node, RejectsNonPositiveCpu) {
  auto p = test_profile();
  p.cpu_ghz = 0.0;
  EXPECT_THROW(Node(NodeId(1), p, sim::Rng(1)), InvariantError);
}

TEST(Node, RejectsNonPositiveBandwidth) {
  auto p = test_profile();
  p.uplink_mbps = 0.0;
  EXPECT_THROW(Node(NodeId(1), p, sim::Rng(1)), InvariantError);
}

TEST(Node, RejectsNonPositiveControlDelay) {
  auto p = test_profile();
  p.control_delay_mean = 0.0;
  EXPECT_THROW(Node(NodeId(1), p, sim::Rng(1)), InvariantError);
}

TEST(Node, ControlDelaySamplesArePositiveWithRoughlyRightMean) {
  Node n(NodeId(1), test_profile(), sim::Rng(42));
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const Seconds d = n.sample_control_delay();
    ASSERT_GT(d, 0.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 5000.0, 0.5, 0.05);
}

TEST(Node, LoadSamplesClampToValidRange) {
  auto p = test_profile();
  p.base_load = 0.9;
  p.load_jitter = 0.5;  // will frequently exceed 1 before clamping
  Node n(NodeId(1), p, sim::Rng(42));
  for (int i = 0; i < 2000; ++i) {
    const double load = n.sample_load();
    EXPECT_GE(load, 0.0);
    EXPECT_LE(load, 0.97);
  }
}

TEST(Node, EffectiveSpeedNeverCollapsesToZero) {
  auto p = test_profile();
  p.base_load = 0.97;
  Node n(NodeId(1), p, sim::Rng(42));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(n.sample_effective_speed(), 0.0);
  }
}

TEST(Node, EffectiveSpeedBelowNominal) {
  Node n(NodeId(1), test_profile(), sim::Rng(42));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(n.sample_effective_speed(), 1.2);
  }
}

TEST(Node, DeliveryProbabilityDecaysWithSize) {
  Node n(NodeId(1), test_profile(), sim::Rng(42));
  const double p1 = n.delivery_probability(megabytes(1.0));
  const double p10 = n.delivery_probability(megabytes(10.0));
  const double p100 = n.delivery_probability(megabytes(100.0));
  EXPECT_GT(p1, p10);
  EXPECT_GT(p10, p100);
  EXPECT_NEAR(p1, 0.99, 1e-9);
  EXPECT_NEAR(p10, std::pow(0.99, 10.0), 1e-9);
}

TEST(Node, DeliveryProbabilityOfTinyMessageIsNearOne) {
  Node n(NodeId(1), test_profile(), sim::Rng(42));
  EXPECT_GT(n.delivery_probability(kilobytes(1.0)), 0.9999);
}

TEST(Node, LosslessProfileAlwaysDelivers) {
  auto p = test_profile();
  p.loss_per_megabyte = 0.0;
  Node n(NodeId(1), p, sim::Rng(42));
  EXPECT_DOUBLE_EQ(n.delivery_probability(megabytes(1000.0)), 1.0);
}

TEST(Node, SameSeedNodesSampleIdentically) {
  Node a(NodeId(1), test_profile(), sim::Rng(7));
  Node b(NodeId(1), test_profile(), sim::Rng(7));
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.sample_control_delay(), b.sample_control_delay());
  }
}

}  // namespace
}  // namespace peerlab::net
