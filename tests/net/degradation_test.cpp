#include "peerlab/net/degradation.hpp"

#include <gtest/gtest.h>

namespace peerlab::net {
namespace {

TEST(Degradation, ControlMessagesAreExempt) {
  DegradationModel m;
  EXPECT_DOUBLE_EQ(m.factor(kilobytes(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(m.factor(kilobytes(64.0)), 1.0);
}

TEST(Degradation, FactorIsMonotonicallyDecreasing) {
  DegradationModel m;
  double prev = 1.0;
  for (double mb = 1.0; mb <= 512.0; mb *= 2.0) {
    const double f = m.factor(megabytes(mb));
    EXPECT_LE(f, prev);
    EXPECT_GT(f, 0.0);
    prev = f;
  }
}

TEST(Degradation, DefaultCalibrationMatchesDesignDoc) {
  DegradationModel m;  // S0 = 8 MB, alpha = 1.2
  // 6.25 MB part (100 MB / 16) keeps most of the rate.
  EXPECT_NEAR(m.factor(megabytes(6.25)), 0.57, 0.1);
  // 25 MB part (100 MB / 4) is substantially degraded.
  EXPECT_NEAR(m.factor(megabytes(25.0)), 0.2, 0.06);
  // 100 MB monolith collapses.
  EXPECT_LT(m.factor(megabytes(100.0)), 0.06);
}

TEST(Degradation, SixteenPartsBeatWholeByAboutTwentyX) {
  DegradationModel m;
  const double whole = m.factor(megabytes(100.0));
  const double part16 = m.factor(megabytes(6.25));
  EXPECT_GT(part16 / whole, 10.0);
  EXPECT_LT(part16 / whole, 30.0);
}

TEST(Degradation, CapAppliesFactorToNominal) {
  DegradationModel m;
  const MbitPerSec nominal = 10.0;
  EXPECT_DOUBLE_EQ(m.cap(nominal, kilobytes(1.0)), 10.0);
  EXPECT_NEAR(m.cap(nominal, megabytes(8.0)), 5.0, 1e-9);  // at S0 factor is 1/2
}

TEST(Degradation, DisabledModelPassesThrough) {
  DegradationModel m;
  m.s0 = 0;
  EXPECT_DOUBLE_EQ(m.factor(megabytes(1000.0)), 1.0);
}

TEST(Degradation, AlphaControlsSeverity) {
  DegradationModel gentle{.s0 = 8 * kMegabyte, .alpha = 0.8};
  DegradationModel harsh{.s0 = 8 * kMegabyte, .alpha = 2.0};
  const Bytes big = megabytes(100.0);
  EXPECT_GT(gentle.factor(big), harsh.factor(big));
}

}  // namespace
}  // namespace peerlab::net
