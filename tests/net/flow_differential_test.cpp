// Seeded differential fuzz: thousands of randomized transitions per
// seed, replayed through the incremental FlowScheduler and the
// map-based reference scheduler in twin worlds, with bit-identical
// rates and identical completion/abort behaviour demanded after every
// transition (see flow_fuzz_driver.hpp for exactly what is compared).
//
// The base seed comes from the PEERLAB_TEST_SEED knob; a failure
// message always carries the scenario seed, so any red CI run is
// reproducible with PEERLAB_TEST_SEED=<seed> locally.

#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>

#include "net/flow_fuzz_driver.hpp"
#include "support/test_seed.hpp"

namespace peerlab::net {
namespace {

constexpr int kSeeds = 24;
constexpr int kTransitionsPerSeed = 5000;

TEST(FlowDifferential, IncrementalMatchesReferenceUnderChurn) {
  const std::uint64_t base = peerlab::testing::test_seed();
  long long transitions = 0, completions = 0, aborts = 0;
  for (int i = 0; i < kSeeds; ++i) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(i);
    fuzz::DifferentialFuzzer fuzzer(seed, {.transitions = kTransitionsPerSeed});
    const fuzz::FuzzStats stats = fuzzer.run();
    transitions += stats.transitions;
    completions += stats.completions;
    aborts += stats.aborts;
    if (::testing::Test::HasFailure()) {
      std::cerr << "reproduce with: PEERLAB_TEST_SEED=" << seed << "\n";
      return;
    }
    // Every fault class must actually have been exercised per seed —
    // a silent generator regression would hollow the suite out.
    EXPECT_GT(stats.starts, 0) << "seed " << seed;
    EXPECT_GT(stats.crashes, 0) << "seed " << seed;
    EXPECT_GT(stats.partitions, 0) << "seed " << seed;
    EXPECT_GT(stats.brownouts, 0) << "seed " << seed;
    EXPECT_GT(stats.batches, 0) << "seed " << seed;
    EXPECT_GT(stats.advances, 0) << "seed " << seed;
  }
  // Aggregate sanity: the sequences must churn real work, not idle.
  EXPECT_EQ(transitions, static_cast<long long>(kSeeds) * kTransitionsPerSeed);
  EXPECT_GT(completions, 1000);
  EXPECT_GT(aborts, 1000);
}

}  // namespace
}  // namespace peerlab::net
