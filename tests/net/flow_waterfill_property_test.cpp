// Equivalence property: the incremental component-local water-filling
// in FlowScheduler must be *bit-identical* to the retained map-based
// reference (tests/net/waterfill_reference.hpp — the seed algorithm,
// decomposed by connected component). The test replays randomized
// scenarios — shared bottlenecks, per-flow caps, cancels, partial
// progress and completions — through a live FlowScheduler and checks
// every flow's rate with exact floating-point equality. Any reordering
// of the floating-point arithmetic in the optimized path, or any
// re-levelling that leaks outside the affected component, shows up
// here as a bit difference.

#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "peerlab/net/flow_scheduler.hpp"
#include "peerlab/net/topology.hpp"
#include "peerlab/sim/simulator.hpp"
#include "support/test_seed.hpp"
#include "net/waterfill_reference.hpp"

namespace peerlab::net {
namespace {

using reference::RefFlow;
using reference::reference_rates;

NodeProfile host(const std::string& name, MbitPerSec up, MbitPerSec down) {
  NodeProfile p;
  p.hostname = name;
  p.uplink_mbps = up;
  p.downlink_mbps = down;
  return p;
}

/// One randomized scenario: a fresh topology and scheduler, a few
/// rounds of start/cancel/advance, and an exact-rate comparison after
/// every mutation round.
void run_scenario(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  sim::Simulator sim(seed);
  Topology topo{sim::Rng(seed)};
  const int nodes = pick(2, 10);
  // Asymmetric capacities drawn from a small set make shared
  // bottlenecks (several flows pinned on one uplink or downlink) and
  // exact floating-point coincidences common rather than rare.
  const double caps[] = {0.8, 2.0, 4.0, 8.0, 33.6, 100.0};
  std::vector<NodeId> ids;
  for (int i = 0; i < nodes; ++i) {
    ids.push_back(topo.add_node(host("n" + std::to_string(i), caps[pick(0, 5)], caps[pick(0, 5)])));
  }
  const double scales[] = {1.0, 0.5, 0.37};
  FlowSchedulerConfig config;
  config.capacity_scale = scales[pick(0, 2)];
  FlowScheduler fs(sim, topo, config);

  std::map<std::uint64_t, RefFlow> model;  // live flows in FlowId order
  std::vector<FlowId> live;

  const auto check = [&] {
    const auto expected = reference_rates(model, topo, config.capacity_scale);
    ASSERT_EQ(expected.size(), fs.active_flows());
    for (const auto& [id, rate] : expected) {
      // Exact equality on purpose: the optimized scheduler promises
      // the same arithmetic in the same order, not "close" results.
      ASSERT_EQ(rate, fs.current_rate(FlowId(id))) << "flow " << id << " seed " << seed;
    }
  };

  const int rounds = pick(3, 8);
  for (int round = 0; round < rounds; ++round) {
    const int starts = pick(1, 6);
    for (int i = 0; i < starts && nodes >= 2; ++i) {
      const NodeId src = ids[static_cast<std::size_t>(pick(0, nodes - 1))];
      NodeId dst = src;
      while (dst == src) dst = ids[static_cast<std::size_t>(pick(0, nodes - 1))];
      const double cap = pick(0, 3) == 0 ? caps[pick(0, 5)] / 3.0 : 0.0;
      FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = static_cast<Bytes>(pick(1, 64)) * 256 * 1024;
      spec.rate_cap = cap;
      const FlowId id = fs.start(std::move(spec));
      model.emplace(id.value(), RefFlow{src, dst, cap});
      live.push_back(id);
    }
    check();

    const int cancels = pick(0, 2);
    for (int i = 0; i < cancels && !live.empty(); ++i) {
      const std::size_t victim = static_cast<std::size_t>(pick(0, static_cast<int>(live.size()) - 1));
      const FlowId id = live[victim];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      model.erase(id.value());
      fs.cancel(id);
    }
    check();

    if (pick(0, 1) == 1) {
      // Let some transfers progress (and possibly complete): rates
      // depend only on the surviving flow set, which the model tracks.
      sim.run_until(sim.now() + 0.25 * pick(1, 4));
      for (auto it = live.begin(); it != live.end();) {
        if (!fs.active(*it)) {
          model.erase(it->value());
          it = live.erase(it);
        } else {
          ++it;
        }
      }
      check();
    }
  }
}

TEST(FlowWaterfillProperty, DenseMatchesReferenceBitForBit) {
  // >= 1000 randomized scenarios, each with multiple checked rounds.
  const std::uint64_t base = peerlab::testing::test_seed();
  for (std::uint64_t seed = base; seed < base + 1000; ++seed) {
    run_scenario(seed);
    if (::testing::Test::HasFatalFailure()) {
      std::cerr << "reproduce with: PEERLAB_TEST_SEED=" << seed << "\n";
      return;
    }
  }
}

TEST(FlowWaterfillProperty, CappedFlowsMatchReference) {
  // Dedicated capped-heavy runs: every flow capped, forcing the
  // at-cap freeze path and its capacity deductions.
  sim::Simulator sim(7);
  Topology topo{sim::Rng(7)};
  const NodeId a = topo.add_node(host("a", 33.6, 8.0));
  const NodeId b = topo.add_node(host("b", 8.0, 33.6));
  const NodeId c = topo.add_node(host("c", 100.0, 100.0));
  FlowScheduler fs(sim, topo);

  std::map<std::uint64_t, RefFlow> model;
  const auto add = [&](NodeId src, NodeId dst, double cap) {
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = megabytes(64.0);
    spec.rate_cap = cap;
    const FlowId id = fs.start(std::move(spec));
    model.emplace(id.value(), RefFlow{src, dst, cap});
  };
  add(a, b, 1.5);
  add(a, c, 2.5);
  add(b, c, 0.75);
  add(c, b, 6.0);
  add(c, a, 3.0);

  const auto expected = reference_rates(model, topo, 1.0);
  for (const auto& [id, rate] : expected) {
    EXPECT_EQ(rate, fs.current_rate(FlowId(id)));
  }
}

}  // namespace
}  // namespace peerlab::net
