// Equivalence property: the dense incremental water-filling in
// FlowScheduler must be *bit-identical* to the original map-based
// implementation it replaced. The reference below is that original
// algorithm, retained verbatim (std::map capacity/user tables, freeze
// set from the round-start snapshot); the test replays randomized
// scenarios — shared bottlenecks, per-flow caps, cancels, partial
// progress and completions — through a live FlowScheduler and checks
// every flow's rate with exact floating-point equality. Any reordering
// of the floating-point arithmetic in the optimized path shows up here
// as a bit difference.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "peerlab/net/flow_scheduler.hpp"
#include "peerlab/net/topology.hpp"
#include "peerlab/sim/simulator.hpp"

namespace peerlab::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEpsRate = 1e-12;

struct RefFlow {
  NodeId src;
  NodeId dst;
  double rate_cap = 0.0;  // <= 0 means uncapped
};

/// The seed implementation's recompute_rates(), kept as the oracle.
/// `flows` is keyed by FlowId value, i.e. iterated in FlowId order —
/// the same order the map-based scheduler iterated its flow map in.
std::map<std::uint64_t, double> reference_rates(const std::map<std::uint64_t, RefFlow>& flows,
                                                const Topology& topo, double capacity_scale) {
  std::map<std::uint64_t, double> rates;
  if (flows.empty()) return rates;

  std::map<std::uint64_t, double> capacity;
  for (const auto& [id, f] : flows) {
    const auto& src = topo.node(f.src).profile();
    const auto& dst = topo.node(f.dst).profile();
    capacity.emplace(f.src.value() * 2, src.uplink_mbps * capacity_scale);
    capacity.emplace(f.dst.value() * 2 + 1, dst.downlink_mbps * capacity_scale);
  }

  struct Pending {
    std::uint64_t id;
    std::uint64_t up_key;
    std::uint64_t down_key;
    double cap;
  };
  std::vector<Pending> unfrozen;
  unfrozen.reserve(flows.size());
  for (const auto& [id, f] : flows) {
    unfrozen.push_back(Pending{id, f.src.value() * 2, f.dst.value() * 2 + 1,
                               f.rate_cap > 0.0 ? f.rate_cap : kInf});
  }

  while (!unfrozen.empty()) {
    std::map<std::uint64_t, int> users;
    for (const auto& p : unfrozen) {
      ++users[p.up_key];
      ++users[p.down_key];
    }
    const auto fair = [&](std::uint64_t key) {
      return std::max(0.0, capacity[key]) / static_cast<double>(users[key]);
    };
    double share = kInf;
    for (const auto& [key, n] : users) {
      share = std::min(share, fair(key));
    }
    double min_cap = kInf;
    for (const auto& p : unfrozen) min_cap = std::min(min_cap, p.cap);
    const double level = std::min(share, min_cap);

    std::vector<Pending> still;
    std::vector<Pending> frozen;
    still.reserve(unfrozen.size());
    for (const auto& p : unfrozen) {
      const bool at_cap = p.cap <= level + kEpsRate;
      const bool at_bottleneck = fair(p.up_key) <= level + kEpsRate ||
                                 fair(p.down_key) <= level + kEpsRate;
      if (at_cap || at_bottleneck) {
        frozen.push_back(p);
      } else {
        still.push_back(p);
      }
    }
    if (frozen.empty()) {
      ADD_FAILURE() << "reference water-filling stalled";
      return rates;
    }
    for (const auto& p : frozen) {
      const double rate = std::min(level, p.cap);
      rates[p.id] = rate;
      capacity[p.up_key] -= rate;
      capacity[p.down_key] -= rate;
    }
    unfrozen = std::move(still);
  }
  return rates;
}

NodeProfile host(const std::string& name, MbitPerSec up, MbitPerSec down) {
  NodeProfile p;
  p.hostname = name;
  p.uplink_mbps = up;
  p.downlink_mbps = down;
  return p;
}

/// One randomized scenario: a fresh topology and scheduler, a few
/// rounds of start/cancel/advance, and an exact-rate comparison after
/// every mutation round.
void run_scenario(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  sim::Simulator sim(seed);
  Topology topo{sim::Rng(seed)};
  const int nodes = pick(2, 10);
  // Asymmetric capacities drawn from a small set make shared
  // bottlenecks (several flows pinned on one uplink or downlink) and
  // exact floating-point coincidences common rather than rare.
  const double caps[] = {0.8, 2.0, 4.0, 8.0, 33.6, 100.0};
  std::vector<NodeId> ids;
  for (int i = 0; i < nodes; ++i) {
    ids.push_back(topo.add_node(host("n" + std::to_string(i), caps[pick(0, 5)], caps[pick(0, 5)])));
  }
  const double scales[] = {1.0, 0.5, 0.37};
  FlowSchedulerConfig config;
  config.capacity_scale = scales[pick(0, 2)];
  FlowScheduler fs(sim, topo, config);

  std::map<std::uint64_t, RefFlow> model;  // live flows in FlowId order
  std::vector<FlowId> live;

  const auto check = [&] {
    const auto expected = reference_rates(model, topo, config.capacity_scale);
    ASSERT_EQ(expected.size(), fs.active_flows());
    for (const auto& [id, rate] : expected) {
      // Exact equality on purpose: the optimized scheduler promises
      // the same arithmetic in the same order, not "close" results.
      ASSERT_EQ(rate, fs.current_rate(FlowId(id))) << "flow " << id << " seed " << seed;
    }
  };

  const int rounds = pick(3, 8);
  for (int round = 0; round < rounds; ++round) {
    const int starts = pick(1, 6);
    for (int i = 0; i < starts && nodes >= 2; ++i) {
      const NodeId src = ids[static_cast<std::size_t>(pick(0, nodes - 1))];
      NodeId dst = src;
      while (dst == src) dst = ids[static_cast<std::size_t>(pick(0, nodes - 1))];
      const double cap = pick(0, 3) == 0 ? caps[pick(0, 5)] / 3.0 : 0.0;
      FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = static_cast<Bytes>(pick(1, 64)) * 256 * 1024;
      spec.rate_cap = cap;
      const FlowId id = fs.start(std::move(spec));
      model.emplace(id.value(), RefFlow{src, dst, cap});
      live.push_back(id);
    }
    check();

    const int cancels = pick(0, 2);
    for (int i = 0; i < cancels && !live.empty(); ++i) {
      const std::size_t victim = static_cast<std::size_t>(pick(0, static_cast<int>(live.size()) - 1));
      const FlowId id = live[victim];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      model.erase(id.value());
      fs.cancel(id);
    }
    check();

    if (pick(0, 1) == 1) {
      // Let some transfers progress (and possibly complete): rates
      // depend only on the surviving flow set, which the model tracks.
      sim.run_until(sim.now() + 0.25 * pick(1, 4));
      for (auto it = live.begin(); it != live.end();) {
        if (!fs.active(*it)) {
          model.erase(it->value());
          it = live.erase(it);
        } else {
          ++it;
        }
      }
      check();
    }
  }
}

TEST(FlowWaterfillProperty, DenseMatchesReferenceBitForBit) {
  // >= 1000 randomized scenarios, each with multiple checked rounds.
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    run_scenario(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(FlowWaterfillProperty, CappedFlowsMatchReference) {
  // Dedicated capped-heavy runs: every flow capped, forcing the
  // at-cap freeze path and its capacity deductions.
  sim::Simulator sim(7);
  Topology topo{sim::Rng(7)};
  const NodeId a = topo.add_node(host("a", 33.6, 8.0));
  const NodeId b = topo.add_node(host("b", 8.0, 33.6));
  const NodeId c = topo.add_node(host("c", 100.0, 100.0));
  FlowScheduler fs(sim, topo);

  std::map<std::uint64_t, RefFlow> model;
  const auto add = [&](NodeId src, NodeId dst, double cap) {
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = megabytes(64.0);
    spec.rate_cap = cap;
    const FlowId id = fs.start(std::move(spec));
    model.emplace(id.value(), RefFlow{src, dst, cap});
  };
  add(a, b, 1.5);
  add(a, c, 2.5);
  add(b, c, 0.75);
  add(c, b, 6.0);
  add(c, a, 3.0);

  const auto expected = reference_rates(model, topo, 1.0);
  for (const auto& [id, rate] : expected) {
    EXPECT_EQ(rate, fs.current_rate(FlowId(id)));
  }
}

}  // namespace
}  // namespace peerlab::net
