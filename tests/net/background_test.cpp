#include "peerlab/net/background.hpp"

#include <gtest/gtest.h>

#include "peerlab/common/check.hpp"

namespace peerlab::net {
namespace {

struct World {
  explicit World(int nodes = 4, std::uint64_t seed = 1) : sim(seed) {
    Topology topo(sim.rng().fork(1));
    for (int i = 0; i < nodes; ++i) {
      NodeProfile p;
      p.hostname = "n" + std::to_string(i);
      p.uplink_mbps = 20.0;
      p.downlink_mbps = 20.0;
      p.loss_per_megabyte = 0.0;
      topo.add_node(p);
    }
    network.emplace(sim, std::move(topo));
  }
  sim::Simulator sim;
  std::optional<Network> network;
};

BackgroundTrafficConfig quick_config(std::uint64_t max_flows) {
  BackgroundTrafficConfig cfg;
  cfg.mean_interarrival = 5.0;
  cfg.min_size = kilobytes(100.0);
  cfg.max_size = megabytes(4.0);
  cfg.max_flows = max_flows;
  return cfg;
}

TEST(BackgroundTraffic, SpawnsAndDrainsBoundedFlows) {
  World w;
  BackgroundTraffic traffic(*w.network, quick_config(20));
  traffic.start();
  w.sim.run_until(10000.0);
  EXPECT_EQ(traffic.flows_started(), 20u);
  EXPECT_EQ(traffic.flows_finished(), 20u);
  EXPECT_GT(traffic.bytes_injected(), 0);
  EXPECT_FALSE(traffic.running());
}

TEST(BackgroundTraffic, GeneratorIsADaemon) {
  // An unlimited generator must not keep run() alive on its own.
  World w;
  BackgroundTraffic traffic(*w.network, quick_config(0));
  traffic.start();
  int work = 0;
  w.sim.schedule(3.0, [&] { ++work; });
  w.sim.run();  // must terminate
  EXPECT_EQ(work, 1);
  traffic.stop();
}

TEST(BackgroundTraffic, StopHaltsSpawning) {
  World w;
  BackgroundTraffic traffic(*w.network, quick_config(0));
  traffic.start();
  w.sim.run_until(100.0);
  traffic.stop();
  const auto at_stop = traffic.flows_started();
  w.sim.run_until(1000.0);
  EXPECT_EQ(traffic.flows_started(), at_stop);
}

TEST(BackgroundTraffic, StartIsIdempotentAndRestartable) {
  World w;
  BackgroundTraffic traffic(*w.network, quick_config(0));
  traffic.start();
  traffic.start();
  w.sim.run_until(50.0);
  traffic.stop();
  const auto first_phase = traffic.flows_started();
  EXPECT_GT(first_phase, 0u);
  traffic.start();
  w.sim.run_until(w.sim.now() + 50.0);
  EXPECT_GT(traffic.flows_started(), first_phase);
  traffic.stop();
}

TEST(BackgroundTraffic, CompetesWithForegroundTransfers) {
  // The same foreground message takes longer once cross traffic loads
  // the links.
  auto measure = [](bool noisy) {
    World w(4, 7);
    BackgroundTrafficConfig cfg;
    cfg.mean_interarrival = 1.0;  // aggressive
    cfg.min_size = megabytes(2.0);
    cfg.max_size = megabytes(6.0);
    cfg.max_flows = 200;
    BackgroundTraffic traffic(*w.network, cfg);
    if (noisy) traffic.start();
    Seconds elapsed = 0.0;
    w.sim.schedule(20.0, [&] {
      w.network->start_message(NodeId(1), NodeId(2), megabytes(5.0),
                               [&](bool, Seconds t) { elapsed = t; });
    });
    w.sim.run_until(20000.0);
    traffic.stop();
    return elapsed;
  };
  const Seconds quiet = measure(false);
  const Seconds noisy = measure(true);
  EXPECT_GT(quiet, 0.0);
  EXPECT_GT(noisy, quiet);
}

TEST(BackgroundTraffic, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    World w(4, seed);
    BackgroundTraffic traffic(*w.network, quick_config(30));
    traffic.start();
    w.sim.run_until(20000.0);
    return std::make_pair(traffic.bytes_injected(), traffic.flows_finished());
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5).first, run(6).first);
}

TEST(BackgroundTraffic, Validation) {
  World w;
  BackgroundTrafficConfig bad;
  bad.mean_interarrival = 0.0;
  EXPECT_THROW(BackgroundTraffic(*w.network, bad), InvariantError);
  bad = BackgroundTrafficConfig{};
  bad.max_size = bad.min_size;
  EXPECT_THROW(BackgroundTraffic(*w.network, bad), InvariantError);
  World tiny(1);
  EXPECT_THROW(BackgroundTraffic(*tiny.network, BackgroundTrafficConfig{}), InvariantError);
}

}  // namespace
}  // namespace peerlab::net
