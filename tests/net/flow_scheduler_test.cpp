#include "peerlab/net/flow_scheduler.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "peerlab/common/check.hpp"
#include "peerlab/sim/simulator.hpp"

namespace peerlab::net {
namespace {

NodeProfile host(const std::string& name, MbitPerSec up = 8.0, MbitPerSec down = 8.0) {
  NodeProfile p;
  p.hostname = name;
  p.uplink_mbps = up;
  p.downlink_mbps = down;
  return p;
}

struct World {
  World() : topo(sim::Rng(1)) {}
  sim::Simulator sim{1};
  Topology topo;
};

TEST(FlowScheduler, SingleFlowGetsFullBottleneckRate) {
  World w;
  const NodeId a = w.topo.add_node(host("a", 8.0, 8.0));
  const NodeId b = w.topo.add_node(host("b", 8.0, 4.0));
  FlowScheduler fs(w.sim, w.topo);

  std::optional<Seconds> done;
  FlowSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.size = megabytes(1.0);  // 8 Mbit at 4 Mbit/s = 2 s
  spec.on_complete = [&](Seconds d) { done = d; };
  const FlowId id = fs.start(std::move(spec));
  EXPECT_NEAR(fs.current_rate(id), 4.0, 1e-9);
  w.sim.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_NEAR(*done, 2.0, 1e-6);
}

TEST(FlowScheduler, TwoFlowsShareASourceUplinkFairly) {
  World w;
  const NodeId src = w.topo.add_node(host("src", 8.0, 8.0));
  const NodeId d1 = w.topo.add_node(host("d1", 100.0, 100.0));
  const NodeId d2 = w.topo.add_node(host("d2", 100.0, 100.0));
  FlowScheduler fs(w.sim, w.topo);

  std::vector<Seconds> done;
  for (const NodeId dst : {d1, d2}) {
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = megabytes(1.0);
    spec.on_complete = [&](Seconds d) { done.push_back(d); };
    const FlowId id = fs.start(std::move(spec));
    (void)id;
  }
  // Both flows share the 8 Mbit/s uplink: 4 Mbit/s each -> 2 s.
  w.sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-6);
  EXPECT_NEAR(done[1], 2.0, 1e-6);
}

TEST(FlowScheduler, DepartureSpeedsUpRemainingFlow) {
  World w;
  const NodeId src = w.topo.add_node(host("src", 8.0, 8.0));
  const NodeId d1 = w.topo.add_node(host("d1", 100.0, 100.0));
  const NodeId d2 = w.topo.add_node(host("d2", 100.0, 100.0));
  FlowScheduler fs(w.sim, w.topo);

  std::optional<Seconds> small_done, big_done;
  FlowSpec small;
  small.src = src;
  small.dst = d1;
  small.size = megabytes(0.5);  // 4 Mbit: at fair 4 Mbit/s done at t=1
  small.on_complete = [&](Seconds d) { small_done = d; };
  FlowSpec big;
  big.src = src;
  big.dst = d2;
  big.size = megabytes(1.5);  // 12 Mbit
  big.on_complete = [&](Seconds d) { big_done = d; };
  fs.start(std::move(small));
  fs.start(std::move(big));
  w.sim.run();
  ASSERT_TRUE(small_done && big_done);
  EXPECT_NEAR(*small_done, 1.0, 1e-6);
  // Big flow: 4 Mbit moved in first second, remaining 8 Mbit at full
  // 8 Mbit/s takes 1 more second -> total 2 s.
  EXPECT_NEAR(*big_done, 2.0, 1e-6);
}

TEST(FlowScheduler, PerFlowRateCapIsHonoured) {
  World w;
  const NodeId a = w.topo.add_node(host("a", 100.0, 100.0));
  const NodeId b = w.topo.add_node(host("b", 100.0, 100.0));
  FlowScheduler fs(w.sim, w.topo);

  std::optional<Seconds> done;
  FlowSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.size = megabytes(1.0);
  spec.rate_cap = 2.0;  // 8 Mbit at 2 Mbit/s = 4 s
  spec.on_complete = [&](Seconds d) { done = d; };
  const FlowId id = fs.start(std::move(spec));
  EXPECT_NEAR(fs.current_rate(id), 2.0, 1e-9);
  w.sim.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_NEAR(*done, 4.0, 1e-6);
}

TEST(FlowScheduler, CappedFlowLeavesCapacityToOthers) {
  World w;
  const NodeId src = w.topo.add_node(host("src", 8.0, 8.0));
  const NodeId d1 = w.topo.add_node(host("d1", 100.0, 100.0));
  const NodeId d2 = w.topo.add_node(host("d2", 100.0, 100.0));
  FlowScheduler fs(w.sim, w.topo);

  FlowSpec capped;
  capped.src = src;
  capped.dst = d1;
  capped.size = megabytes(10.0);
  capped.rate_cap = 2.0;
  capped.on_complete = [](Seconds) {};
  FlowSpec open;
  open.src = src;
  open.dst = d2;
  open.size = megabytes(10.0);
  open.on_complete = [](Seconds) {};
  const FlowId c = fs.start(std::move(capped));
  const FlowId o = fs.start(std::move(open));
  // Max-min: capped flow pegged at 2, open flow gets the remaining 6.
  EXPECT_NEAR(fs.current_rate(c), 2.0, 1e-9);
  EXPECT_NEAR(fs.current_rate(o), 6.0, 1e-9);
  w.sim.clear();
}

TEST(FlowScheduler, DownlinkCanBeTheBottleneck) {
  World w;
  const NodeId s1 = w.topo.add_node(host("s1", 100.0, 100.0));
  const NodeId s2 = w.topo.add_node(host("s2", 100.0, 100.0));
  const NodeId dst = w.topo.add_node(host("dst", 100.0, 6.0));
  FlowScheduler fs(w.sim, w.topo);

  FlowSpec f1;
  f1.src = s1;
  f1.dst = dst;
  f1.size = megabytes(10.0);
  f1.on_complete = [](Seconds) {};
  FlowSpec f2;
  f2.src = s2;
  f2.dst = dst;
  f2.size = megabytes(10.0);
  f2.on_complete = [](Seconds) {};
  const FlowId a = fs.start(std::move(f1));
  const FlowId b = fs.start(std::move(f2));
  EXPECT_NEAR(fs.current_rate(a), 3.0, 1e-9);
  EXPECT_NEAR(fs.current_rate(b), 3.0, 1e-9);
  w.sim.clear();
}

TEST(FlowScheduler, CancelSuppressesCallbackAndFreesCapacity) {
  World w;
  const NodeId src = w.topo.add_node(host("src", 8.0, 8.0));
  const NodeId d1 = w.topo.add_node(host("d1", 100.0, 100.0));
  const NodeId d2 = w.topo.add_node(host("d2", 100.0, 100.0));
  FlowScheduler fs(w.sim, w.topo);

  bool cancelled_fired = false;
  std::optional<Seconds> other_done;
  FlowSpec doomed;
  doomed.src = src;
  doomed.dst = d1;
  doomed.size = megabytes(1.0);
  doomed.on_complete = [&](Seconds) { cancelled_fired = true; };
  FlowSpec other;
  other.src = src;
  other.dst = d2;
  other.size = megabytes(1.0);
  other.on_complete = [&](Seconds d) { other_done = d; };
  const FlowId doomed_id = fs.start(std::move(doomed));
  fs.start(std::move(other));

  w.sim.schedule(0.5, [&] { fs.cancel(doomed_id); });
  w.sim.run();
  EXPECT_FALSE(cancelled_fired);
  ASSERT_TRUE(other_done.has_value());
  // 0.5 s at 4 Mbit/s moved 2 Mbit; remaining 6 Mbit at 8 Mbit/s takes
  // 0.75 s -> total 1.25 s.
  EXPECT_NEAR(*other_done, 1.25, 1e-6);
}

TEST(FlowScheduler, CancelUnknownFlowIsNoOp) {
  World w;
  w.topo.add_node(host("a"));
  FlowScheduler fs(w.sim, w.topo);
  fs.cancel(FlowId(12345));  // must not throw
  SUCCEED();
}

TEST(FlowScheduler, CompletionCallbackCanStartNextFlow) {
  World w;
  const NodeId a = w.topo.add_node(host("a", 8.0, 8.0));
  const NodeId b = w.topo.add_node(host("b", 8.0, 8.0));
  FlowScheduler fs(w.sim, w.topo);

  std::vector<Seconds> completions;
  std::function<void(int)> send_chunk = [&](int remaining) {
    FlowSpec spec;
    spec.src = a;
    spec.dst = b;
    spec.size = megabytes(1.0);
    spec.on_complete = [&, remaining](Seconds) {
      completions.push_back(w.sim.now());
      if (remaining > 1) send_chunk(remaining - 1);
    };
    fs.start(std::move(spec));
  };
  send_chunk(4);
  w.sim.run();
  ASSERT_EQ(completions.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(completions[i], static_cast<double>(i + 1), 1e-6);
  }
}

TEST(FlowScheduler, UploadDownloadCountsTrackActiveFlows) {
  World w;
  const NodeId a = w.topo.add_node(host("a"));
  const NodeId b = w.topo.add_node(host("b"));
  FlowScheduler fs(w.sim, w.topo);

  EXPECT_EQ(fs.uploads_at(a), 0);
  FlowSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.size = megabytes(1.0);
  spec.on_complete = [](Seconds) {};
  fs.start(std::move(spec));
  EXPECT_EQ(fs.uploads_at(a), 1);
  EXPECT_EQ(fs.downloads_at(b), 1);
  EXPECT_EQ(fs.uploads_at(b), 0);
  EXPECT_EQ(fs.downloads_at(a), 0);
  w.sim.run();
  EXPECT_EQ(fs.uploads_at(a), 0);
  EXPECT_EQ(fs.downloads_at(b), 0);
}

TEST(FlowScheduler, RemainingBytesDecreasesOverTime) {
  World w;
  const NodeId a = w.topo.add_node(host("a", 8.0, 8.0));
  const NodeId b = w.topo.add_node(host("b", 8.0, 8.0));
  FlowScheduler fs(w.sim, w.topo);

  FlowSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.size = megabytes(2.0);
  spec.on_complete = [](Seconds) {};
  const FlowId id = fs.start(std::move(spec));
  EXPECT_EQ(fs.remaining_bytes(id), megabytes(2.0));
  // Poke the scheduler at t=1 via a competing churn event.
  w.sim.schedule(1.0, [&] {
    FlowSpec other;
    other.src = b;
    other.dst = a;
    other.size = megabytes(0.1);
    other.on_complete = [](Seconds) {};
    fs.start(std::move(other));
    // After 1 s at 8 Mbit/s, 1 MB of the 2 MB remains.
    EXPECT_NEAR(static_cast<double>(fs.remaining_bytes(id)), 1e6, 1e3);
  });
  w.sim.run();
  EXPECT_EQ(fs.remaining_bytes(id), 0);
}

TEST(FlowScheduler, RejectsBadSpecs) {
  World w;
  const NodeId a = w.topo.add_node(host("a"));
  FlowScheduler fs(w.sim, w.topo);
  FlowSpec spec;
  spec.src = a;
  spec.dst = NodeId(99);
  spec.size = megabytes(1.0);
  EXPECT_THROW(fs.start(std::move(spec)), InvariantError);

  FlowSpec zero;
  zero.src = a;
  zero.dst = a;
  zero.size = 0;
  EXPECT_THROW(fs.start(std::move(zero)), InvariantError);
}

TEST(FlowScheduler, CapacityScaleReducesRates) {
  World w;
  const NodeId a = w.topo.add_node(host("a", 8.0, 8.0));
  const NodeId b = w.topo.add_node(host("b", 8.0, 8.0));
  FlowScheduler fs(w.sim, w.topo, FlowSchedulerConfig{.capacity_scale = 0.5});
  FlowSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.size = megabytes(1.0);
  spec.on_complete = [](Seconds) {};
  const FlowId id = fs.start(std::move(spec));
  EXPECT_NEAR(fs.current_rate(id), 4.0, 1e-9);
  w.sim.clear();
}

TEST(FlowScheduler, ManyFlowsConserveCapacity) {
  World w;
  const NodeId src = w.topo.add_node(host("src", 10.0, 10.0));
  std::vector<NodeId> dsts;
  for (int i = 0; i < 10; ++i) {
    dsts.push_back(w.topo.add_node(host("d" + std::to_string(i), 100.0, 100.0)));
  }
  FlowScheduler fs(w.sim, w.topo);
  std::vector<FlowId> ids;
  for (const NodeId d : dsts) {
    FlowSpec spec;
    spec.src = src;
    spec.dst = d;
    spec.size = megabytes(5.0);
    spec.on_complete = [](Seconds) {};
    ids.push_back(fs.start(std::move(spec)));
  }
  double total = 0.0;
  for (const FlowId id : ids) total += fs.current_rate(id);
  EXPECT_NEAR(total, 10.0, 1e-6);  // sum of rates == uplink capacity
  for (const FlowId id : ids) EXPECT_NEAR(fs.current_rate(id), 1.0, 1e-9);
  w.sim.clear();
}

TEST(FlowScheduler, BatchDefersRatesUntilTheGuardCloses) {
  World w;
  const NodeId src = w.topo.add_node(host("src", 8.0, 8.0));
  const NodeId d1 = w.topo.add_node(host("d1", 100.0, 100.0));
  const NodeId d2 = w.topo.add_node(host("d2", 100.0, 100.0));
  FlowScheduler fs(w.sim, w.topo);

  std::vector<Seconds> done;
  FlowId first, second;
  {
    const auto batch = fs.start_batch();
    FlowSpec a;
    a.src = src;
    a.dst = d1;
    a.size = megabytes(1.0);
    a.on_complete = [&](Seconds d) { done.push_back(d); };
    first = fs.start(std::move(a));
    // Inside the batch the first flow has not been leveled yet.
    EXPECT_NEAR(fs.current_rate(first), 0.0, 1e-12);
    FlowSpec b;
    b.src = src;
    b.dst = d2;
    b.size = megabytes(1.0);
    b.on_complete = [&](Seconds d) { done.push_back(d); };
    second = fs.start(std::move(b));
  }
  // One recompute at guard close: both flows share the uplink.
  EXPECT_NEAR(fs.current_rate(first), 4.0, 1e-9);
  EXPECT_NEAR(fs.current_rate(second), 4.0, 1e-9);
  w.sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-6);  // 8 Mbit at the 4 Mbit/s fair share
  EXPECT_NEAR(done[1], 2.0, 1e-6);
}

TEST(FlowScheduler, NestedBatchesSettleOnlyAtTheOutermostClose) {
  World w;
  const NodeId src = w.topo.add_node(host("src", 8.0, 8.0));
  const NodeId dst = w.topo.add_node(host("dst", 100.0, 100.0));
  FlowScheduler fs(w.sim, w.topo);
  FlowId id;
  {
    const auto outer = fs.start_batch();
    {
      const auto inner = fs.start_batch();
      FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = megabytes(1.0);
      spec.on_complete = [](Seconds) {};
      id = fs.start(std::move(spec));
    }
    EXPECT_NEAR(fs.current_rate(id), 0.0, 1e-12);  // inner close defers
  }
  EXPECT_NEAR(fs.current_rate(id), 8.0, 1e-9);
  w.sim.clear();
}

TEST(FlowScheduler, AbortTouchingTearsDownFlowsAndRelevelsSurvivors) {
  World w;
  const NodeId a = w.topo.add_node(host("a", 8.0, 8.0));
  const NodeId b = w.topo.add_node(host("b", 100.0, 100.0));
  const NodeId c = w.topo.add_node(host("c", 100.0, 100.0));
  FlowScheduler fs(w.sim, w.topo);

  std::optional<Seconds> aborted_after;
  std::optional<Seconds> survivor_done;
  FlowSpec dying;
  dying.src = a;
  dying.dst = b;
  dying.size = megabytes(1.0);
  dying.on_complete = [](Seconds) { FAIL() << "aborted flow must not complete"; };
  dying.on_abort = [&](Seconds elapsed) { aborted_after = elapsed; };
  fs.start(std::move(dying));
  FlowSpec surviving;
  surviving.src = a;
  surviving.dst = c;
  surviving.size = megabytes(1.0);
  surviving.on_complete = [&](Seconds d) { survivor_done = d; };
  const FlowId survivor = fs.start(std::move(surviving));

  w.sim.schedule(1.0, [&] { EXPECT_EQ(fs.abort_touching(b), 1u); });
  w.sim.run_until(1.0);
  // The survivor now owns the whole uplink.
  EXPECT_NEAR(fs.current_rate(survivor), 8.0, 1e-9);
  w.sim.run();
  ASSERT_TRUE(aborted_after.has_value());
  EXPECT_NEAR(*aborted_after, 1.0, 1e-9);
  ASSERT_TRUE(survivor_done.has_value());
  // 1 s at 4 Mbit/s (0.5 MB moved), remaining 0.5 MB at 8 Mbit/s.
  EXPECT_NEAR(*survivor_done, 1.5, 1e-6);
}

TEST(FlowScheduler, AbortBetweenOnlyKillsThePair) {
  World w;
  const NodeId a = w.topo.add_node(host("a", 8.0, 8.0));
  const NodeId b = w.topo.add_node(host("b", 100.0, 100.0));
  const NodeId c = w.topo.add_node(host("c", 100.0, 100.0));
  FlowScheduler fs(w.sim, w.topo);
  int aborted = 0;
  for (const NodeId dst : {b, c}) {
    FlowSpec spec;
    spec.src = a;
    spec.dst = dst;
    spec.size = megabytes(1.0);
    spec.on_complete = [](Seconds) {};
    spec.on_abort = [&](Seconds) { ++aborted; };
    fs.start(std::move(spec));
  }
  EXPECT_EQ(fs.abort_between(a, b), 1u);
  EXPECT_EQ(aborted, 1);
  EXPECT_EQ(fs.active_flows(), 1u);
  w.sim.clear();
}

TEST(FlowScheduler, AbortCallbackMayStartAReplacementFlow) {
  World w;
  const NodeId a = w.topo.add_node(host("a", 8.0, 8.0));
  const NodeId b = w.topo.add_node(host("b", 100.0, 100.0));
  const NodeId c = w.topo.add_node(host("c", 100.0, 100.0));
  FlowScheduler fs(w.sim, w.topo);
  std::optional<Seconds> replacement_done;
  FlowSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.size = megabytes(1.0);
  spec.on_complete = [](Seconds) {};
  spec.on_abort = [&](Seconds) {
    // Failover-style reentrancy: start the replacement from the abort
    // callback itself.
    FlowSpec repl;
    repl.src = a;
    repl.dst = c;
    repl.size = megabytes(1.0);
    repl.on_complete = [&](Seconds d) { replacement_done = d; };
    fs.start(std::move(repl));
  };
  fs.start(std::move(spec));
  w.sim.schedule(0.5, [&] { fs.abort_touching(b); });
  w.sim.run();
  ASSERT_TRUE(replacement_done.has_value());
  EXPECT_NEAR(*replacement_done, 1.0, 1e-6);  // full uplink from its start
}

TEST(FlowScheduler, CapacityFactorValidatesAndScales) {
  World w;
  const NodeId a = w.topo.add_node(host("a", 8.0, 8.0));
  const NodeId b = w.topo.add_node(host("b", 100.0, 100.0));
  FlowScheduler fs(w.sim, w.topo);
  EXPECT_THROW(fs.set_capacity_factor(b, 0.0), InvariantError);
  EXPECT_THROW(fs.set_capacity_factor(b, 1.5), InvariantError);
  EXPECT_THROW(fs.set_capacity_factor(NodeId(99), 0.5), InvariantError);

  std::optional<Seconds> done;
  FlowSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.size = megabytes(1.0);
  spec.on_complete = [&](Seconds d) { done = d; };
  const FlowId id = fs.start(std::move(spec));
  EXPECT_NEAR(fs.current_rate(id), 8.0, 1e-9);
  fs.set_capacity_factor(a, 0.25);
  EXPECT_NEAR(fs.current_rate(id), 2.0, 1e-9);
  w.sim.run();
  ASSERT_TRUE(done.has_value());
  // No time passed before the brownout: the whole MB moves at 2 Mbit/s.
  EXPECT_NEAR(*done, 4.0, 1e-6);
}

TEST(FlowScheduler, AbortBetweenRelevelsOnlyTheSharedBottleneck) {
  // Two flows share node a's uplink; a third component (c -> d) is
  // disjoint. Aborting the (a, b1) pair must hand a's whole uplink to
  // the survivor and leave the disjoint flow's rate bitwise unchanged.
  World w;
  const NodeId a = w.topo.add_node(host("a", 6.0, 100.0));
  const NodeId b1 = w.topo.add_node(host("b1", 100.0, 100.0));
  const NodeId b2 = w.topo.add_node(host("b2", 100.0, 100.0));
  const NodeId c = w.topo.add_node(host("c", 2.0, 100.0));
  const NodeId d = w.topo.add_node(host("d", 100.0, 100.0));
  FlowScheduler fs(w.sim, w.topo);

  const auto start = [&](NodeId src, NodeId dst) {
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = megabytes(64.0);
    spec.on_complete = [](Seconds) {};
    spec.on_abort = [](Seconds) {};
    return fs.start(std::move(spec));
  };
  const FlowId f1 = start(a, b1);
  const FlowId f2 = start(a, b2);
  const FlowId other = start(c, d);
  EXPECT_NEAR(fs.current_rate(f1), 3.0, 1e-12);
  EXPECT_NEAR(fs.current_rate(f2), 3.0, 1e-12);
  const double other_before = fs.current_rate(other);

  EXPECT_EQ(fs.abort_between(a, b1), 1u);
  EXPECT_FALSE(fs.active(f1));
  EXPECT_EQ(fs.current_rate(f2), 6.0);  // survivor re-levelled to full uplink
  EXPECT_EQ(fs.current_rate(other), other_before);  // exact: untouched component
  w.sim.clear();
}

TEST(FlowScheduler, BrownoutMidTransferSplitsCompletionTime) {
  // 1 MB = 8 Mbit on an 8 Mbit/s path: 1 s clean. A factor-0.25
  // brownout after 0.5 s leaves 4 Mbit to move at 2 Mbit/s, so the
  // transfer finishes at 0.5 + 2.0 = 2.5 s.
  World w;
  const NodeId a = w.topo.add_node(host("a", 8.0, 8.0));
  const NodeId b = w.topo.add_node(host("b", 100.0, 100.0));
  FlowScheduler fs(w.sim, w.topo);

  std::optional<Seconds> done;
  FlowSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.size = megabytes(1.0);
  spec.on_complete = [&](Seconds d) { done = d; };
  const FlowId id = fs.start(std::move(spec));
  w.sim.schedule(0.5, [&] {
    fs.set_capacity_factor(a, 0.25);
    // The mutation settles progress first: half the payload moved at
    // the old 8 Mbit/s rate before the factor took effect.
    EXPECT_NEAR(fs.remaining_bytes(id), megabytes(0.5), 1.0);
    EXPECT_NEAR(fs.current_rate(id), 2.0, 1e-12);
  });
  w.sim.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_NEAR(*done, 2.5, 1e-6);
}

TEST(FlowScheduler, CompletionCallbackMayAbortInsideABatch) {
  // Chaos-style reentrancy: the completion handler opens a batch
  // guard, aborts a still-running sibling, and starts a replacement —
  // all before the guard closes. The scheduler must settle exactly
  // once, abort the sibling, and run the replacement to completion.
  World w;
  const NodeId a = w.topo.add_node(host("a", 8.0, 8.0));
  const NodeId b = w.topo.add_node(host("b", 100.0, 100.0));
  const NodeId c = w.topo.add_node(host("c", 100.0, 100.0));
  FlowScheduler fs(w.sim, w.topo);

  int sibling_aborted = 0;
  std::optional<Seconds> replacement_done;
  FlowSpec slow;
  slow.src = a;
  slow.dst = c;
  slow.size = megabytes(8.0);
  slow.on_complete = [](Seconds) {};
  slow.on_abort = [&](Seconds) { ++sibling_aborted; };
  fs.start(std::move(slow));

  FlowSpec fast;
  fast.src = a;
  fast.dst = b;
  fast.size = megabytes(0.5);
  fast.on_complete = [&](Seconds) {
    const auto batch = fs.start_batch();
    EXPECT_EQ(fs.abort_between(a, c), 1u);
    FlowSpec repl;
    repl.src = a;
    repl.dst = b;
    repl.size = megabytes(1.0);
    repl.on_complete = [&](Seconds d) { replacement_done = d; };
    fs.start(std::move(repl));
  };
  fs.start(std::move(fast));
  w.sim.run();
  EXPECT_EQ(sibling_aborted, 1);
  ASSERT_TRUE(replacement_done.has_value());
  // Replacement ran alone on the full 8 Mbit/s uplink: 1 MB in 1 s.
  EXPECT_NEAR(*replacement_done, 1.0, 1e-6);
  EXPECT_EQ(fs.active_flows(), 0u);
}

}  // namespace
}  // namespace peerlab::net
