#include "peerlab/net/topology.hpp"

#include <gtest/gtest.h>

#include "peerlab/common/check.hpp"

namespace peerlab::net {
namespace {

NodeProfile host(const std::string& name, double lat = 0.0, double lon = 0.0) {
  NodeProfile p;
  p.hostname = name;
  p.location = {lat, lon};
  return p;
}

TEST(Topology, AddNodeAssignsDenseIds) {
  Topology topo(sim::Rng(1));
  EXPECT_EQ(topo.add_node(host("a")).value(), 1u);
  EXPECT_EQ(topo.add_node(host("b")).value(), 2u);
  EXPECT_EQ(topo.size(), 2u);
}

TEST(Topology, NodeLookupByIdAndHostname) {
  Topology topo(sim::Rng(1));
  const NodeId a = topo.add_node(host("alpha.example"));
  const NodeId b = topo.add_node(host("beta.example"));
  EXPECT_EQ(topo.node(a).profile().hostname, "alpha.example");
  EXPECT_EQ(topo.find_by_hostname("beta.example"), b);
  EXPECT_FALSE(topo.find_by_hostname("missing.example").valid());
}

TEST(Topology, RejectsDuplicateHostnames) {
  Topology topo(sim::Rng(1));
  topo.add_node(host("dup.example"));
  EXPECT_THROW(topo.add_node(host("dup.example")), InvariantError);
}

TEST(Topology, UnknownIdThrows) {
  Topology topo(sim::Rng(1));
  topo.add_node(host("a"));
  EXPECT_THROW((void)topo.node(NodeId(99)), InvariantError);
  EXPECT_THROW((void)topo.node(NodeId{}), InvariantError);
}

TEST(Topology, ContainsChecksRange) {
  Topology topo(sim::Rng(1));
  const NodeId a = topo.add_node(host("a"));
  EXPECT_TRUE(topo.contains(a));
  EXPECT_FALSE(topo.contains(NodeId(2)));
  EXPECT_FALSE(topo.contains(NodeId{}));
}

TEST(Topology, NodeIdsEnumeratesAll) {
  Topology topo(sim::Rng(1));
  topo.add_node(host("a"));
  topo.add_node(host("b"));
  topo.add_node(host("c"));
  const auto ids = topo.node_ids();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0].value(), 1u);
  EXPECT_EQ(ids[2].value(), 3u);
}

TEST(Topology, PropagationToSelfIsLoopback) {
  Topology topo(sim::Rng(1));
  const NodeId a = topo.add_node(host("a", 41.4, 2.2));
  EXPECT_LT(topo.propagation(a, a), 0.001);
  EXPECT_GT(topo.propagation(a, a), 0.0);
}

TEST(Topology, PropagationScalesWithDistance) {
  Topology topo(sim::Rng(1));
  const NodeId bcn = topo.add_node(host("bcn", 41.39, 2.17));
  const NodeId ber = topo.add_node(host("ber", 52.52, 13.40));
  const NodeId sea = topo.add_node(host("sea", 47.61, -122.33));
  EXPECT_LT(topo.propagation(bcn, ber), topo.propagation(bcn, sea));
  EXPECT_DOUBLE_EQ(topo.propagation(bcn, ber), topo.propagation(ber, bcn));
}

TEST(Topology, PerNodeRngStreamsDiffer) {
  Topology topo(sim::Rng(1));
  const NodeId a = topo.add_node(host("a"));
  const NodeId b = topo.add_node(host("b"));
  // Identical profiles but different forked streams: samples diverge.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (topo.node(a).sample_control_delay() == topo.node(b).sample_control_delay()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Topology, SameSeedTopologiesAreIdentical) {
  auto build = [] {
    Topology topo(sim::Rng(55));
    topo.add_node(host("a"));
    topo.add_node(host("b"));
    return topo;
  };
  Topology t1 = build();
  Topology t2 = build();
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(t1.node(NodeId(1)).sample_control_delay(),
                     t2.node(NodeId(1)).sample_control_delay());
  }
}

}  // namespace
}  // namespace peerlab::net
