#include "peerlab/net/fault_plan.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "peerlab/common/check.hpp"
#include "peerlab/sim/simulator.hpp"

namespace peerlab::net {
namespace {

NodeProfile host(const std::string& name, MbitPerSec up = 8.0, MbitPerSec down = 8.0) {
  NodeProfile p;
  p.hostname = name;
  p.uplink_mbps = up;
  p.downlink_mbps = down;
  p.control_delay_mean = 0.05;
  p.control_delay_sigma = 0.0;
  p.loss_per_megabyte = 0.0;
  return p;
}

Network make_network(sim::Simulator& sim, int nodes) {
  Topology topo(sim.rng().fork(1));
  for (int i = 0; i < nodes; ++i) topo.add_node(host("h" + std::to_string(i)));
  NetworkConfig cfg;
  cfg.datagram_loss = 0.0;
  return Network(sim, std::move(topo), cfg);
}

// ---- FaultPlan (pure data) ----

TEST(FaultPlan, CrashEmitsPairedRestart) {
  FaultPlan plan;
  plan.crash(10.0, NodeId(1), 30.0);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kRestart);
  EXPECT_DOUBLE_EQ(plan.events()[1].at, 40.0);
}

TEST(FaultPlan, ValidatesArguments) {
  FaultPlan plan;
  EXPECT_THROW(plan.crash(10.0, NodeId(1), 0.0), InvariantError);
  EXPECT_THROW(plan.crash(-1.0, NodeId(1), 5.0), InvariantError);
  EXPECT_THROW(plan.crash(10.0, NodeId(), 5.0), InvariantError);
  EXPECT_THROW(plan.brownout(0.0, NodeId(1), 0.0, 5.0), InvariantError);
  EXPECT_THROW(plan.brownout(0.0, NodeId(1), 1.0, 5.0), InvariantError);
  EXPECT_THROW(plan.partition(0.0, NodeId(1), NodeId(2), 0.0), InvariantError);
}

TEST(FaultPlan, RandomChurnIsDeterministicPerSeed) {
  const std::vector<NodeId> nodes = {NodeId(1), NodeId(2), NodeId(3)};
  sim::Rng a(42), b(42), c(43);
  const FaultPlan pa = FaultPlan::random_churn(a, nodes, 300.0, 60.0, 0.0, 5000.0);
  const FaultPlan pb = FaultPlan::random_churn(b, nodes, 300.0, 60.0, 0.0, 5000.0);
  const FaultPlan pc = FaultPlan::random_churn(c, nodes, 300.0, 60.0, 0.0, 5000.0);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa.events()[i].at, pb.events()[i].at);
    EXPECT_EQ(pa.events()[i].kind, pb.events()[i].kind);
    EXPECT_EQ(pa.events()[i].node, pb.events()[i].node);
  }
  // A different seed produces a different schedule.
  bool differs = pa.size() != pc.size();
  for (std::size_t i = 0; !differs && i < pa.size(); ++i) {
    differs = pa.events()[i].at != pc.events()[i].at;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, RandomChurnCrashesAreAlwaysRepaired) {
  const std::vector<NodeId> nodes = {NodeId(1), NodeId(2)};
  sim::Rng rng(7);
  const FaultPlan plan = FaultPlan::random_churn(rng, nodes, 200.0, 50.0, 100.0, 3000.0);
  int balance = 0;
  for (const auto& event : plan.events()) {
    EXPECT_GE(event.at, 100.0);
    if (event.kind == FaultKind::kCrash) {
      EXPECT_LT(event.at, 3000.0);
      ++balance;
    }
    if (event.kind == FaultKind::kRestart) --balance;
  }
  EXPECT_EQ(balance, 0);  // every crash has its restart
}

// ---- FaultInjector against a Network ----

TEST(FaultInjector, CrashAndRestartToggleNodeState) {
  sim::Simulator sim(1);
  auto net = make_network(sim, 2);
  FaultPlan plan;
  plan.crash(10.0, NodeId(2), 20.0);
  std::vector<std::pair<Seconds, bool>> hook_log;  // (when, up?)
  FaultInjector::Hooks hooks;
  hooks.on_crash = [&](NodeId) { hook_log.emplace_back(sim.now(), false); };
  hooks.on_restart = [&](NodeId) { hook_log.emplace_back(sim.now(), true); };
  FaultInjector injector(net, plan, std::move(hooks));

  EXPECT_TRUE(net.node_up(NodeId(2)));
  sim.run_until(15.0);
  EXPECT_FALSE(net.node_up(NodeId(2)));
  EXPECT_FALSE(net.reachable(NodeId(1), NodeId(2)));
  sim.run_until(35.0);
  EXPECT_TRUE(net.node_up(NodeId(2)));
  EXPECT_EQ(injector.crashes_applied(), 1u);
  EXPECT_EQ(injector.restarts_applied(), 1u);
  ASSERT_EQ(hook_log.size(), 2u);
  EXPECT_DOUBLE_EQ(hook_log[0].first, 10.0);
  EXPECT_FALSE(hook_log[0].second);
  EXPECT_DOUBLE_EQ(hook_log[1].first, 30.0);
  EXPECT_TRUE(hook_log[1].second);
}

TEST(FaultInjector, EventsAreDaemonsAndDoNotKeepTheRunAlive) {
  sim::Simulator sim(1);
  auto net = make_network(sim, 2);
  FaultPlan plan;
  plan.crash(1000.0, NodeId(2), 50.0);
  FaultInjector injector(net, plan);
  sim.run();  // no regular events: returns immediately at t=0
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(injector.crashes_applied(), 0u);
}

TEST(Network, CrashAbortsInFlightMessagesAtTheCrashInstant) {
  sim::Simulator sim(1);
  auto net = make_network(sim, 3);
  std::optional<Seconds> when;
  std::optional<bool> ok;
  // 8 Mbit/s both ways, 4 MB => 4 s unfaulted.
  net.start_message(NodeId(1), NodeId(2), megabytes(4.0), [&](bool o, Seconds) {
    ok = o;
    when = sim.now();
  });
  bool bystander_done = false;
  net.start_message(NodeId(3), NodeId(1), megabytes(1.0),
                    [&](bool o, Seconds) { bystander_done = o; });
  sim.schedule(1.5, [&] { net.crash_node(NodeId(2)); });
  sim.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);
  EXPECT_NEAR(*when, 1.5, 1e-9);
  EXPECT_EQ(net.messages_aborted(), 1u);
  EXPECT_TRUE(bystander_done);  // unrelated flow survives the crash
}

TEST(Network, SendToDownNodeFailsAfterFaultStall) {
  sim::Simulator sim(1);
  auto net = make_network(sim, 2);
  net.crash_node(NodeId(2));
  std::optional<Seconds> elapsed;
  std::optional<bool> ok;
  const FlowId id =
      net.start_message(NodeId(1), NodeId(2), megabytes(1.0), [&](bool o, Seconds e) {
        ok = o;
        elapsed = e;
      });
  EXPECT_FALSE(id.valid());
  sim.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);
  EXPECT_NEAR(*elapsed, net.config().fault_stall, 1e-9);
  EXPECT_EQ(net.messages_blocked(), 1u);
}

TEST(Network, DatagramsToAndFromDownNodesAreDropped) {
  sim::Simulator sim(1);
  auto net = make_network(sim, 2);
  net.crash_node(NodeId(1));
  int delivered = 0;
  net.send_datagram(NodeId(1), NodeId(2), kilobytes(1.0), [&] { ++delivered; });
  net.send_datagram(NodeId(2), NodeId(1), kilobytes(1.0), [&] { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.datagrams_blocked(), 2u);
}

TEST(Network, CrashBetweenSendAndArrivalKillsTheDatagram) {
  sim::Simulator sim(1);
  auto net = make_network(sim, 2);
  int delivered = 0;
  net.send_datagram(NodeId(1), NodeId(2), kilobytes(1.0), [&] { ++delivered; });
  // Control delay is ~51 ms; crash the destination while in flight.
  sim.schedule(0.01, [&] { net.crash_node(NodeId(2)); });
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.datagrams_blocked(), 1u);
}

TEST(Network, RestoredNodeCarriesTrafficAgain) {
  sim::Simulator sim(1);
  auto net = make_network(sim, 2);
  net.crash_node(NodeId(2));
  net.restore_node(NodeId(2));
  std::optional<bool> ok;
  net.start_message(NodeId(1), NodeId(2), megabytes(1.0),
                    [&](bool o, Seconds) { ok = o; });
  sim.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(*ok);
}

TEST(Network, PartitionBlocksOnlyThatPair) {
  sim::Simulator sim(1);
  auto net = make_network(sim, 3);
  net.partition(NodeId(1), NodeId(2));
  EXPECT_TRUE(net.partitioned(NodeId(2), NodeId(1)));  // symmetric
  EXPECT_FALSE(net.reachable(NodeId(1), NodeId(2)));
  EXPECT_TRUE(net.reachable(NodeId(1), NodeId(3)));
  int delivered = 0;
  net.send_datagram(NodeId(1), NodeId(2), kilobytes(1.0), [&] { ++delivered; });
  net.send_datagram(NodeId(1), NodeId(3), kilobytes(1.0), [&] { ++delivered; });
  sim.run();
  EXPECT_EQ(delivered, 1);
  net.heal(NodeId(1), NodeId(2));
  EXPECT_TRUE(net.reachable(NodeId(1), NodeId(2)));
}

TEST(Network, PartitionAbortsInFlightMessagesBetweenThePair) {
  sim::Simulator sim(1);
  auto net = make_network(sim, 3);
  std::optional<bool> cut_ok;
  bool other_ok = false;
  net.start_message(NodeId(1), NodeId(2), megabytes(4.0),
                    [&](bool o, Seconds) { cut_ok = o; });
  net.start_message(NodeId(3), NodeId(2), megabytes(1.0),
                    [&](bool o, Seconds) { other_ok = o; });
  sim.schedule(1.0, [&] { net.partition(NodeId(1), NodeId(2)); });
  sim.run();
  ASSERT_TRUE(cut_ok.has_value());
  EXPECT_FALSE(*cut_ok);
  EXPECT_TRUE(other_ok);
  EXPECT_EQ(net.messages_aborted(), 1u);
}

TEST(FaultInjector, BrownoutScalesCapacityAndRestores) {
  sim::Simulator sim(1);
  auto net = make_network(sim, 2);
  FaultPlan plan;
  plan.brownout(0.0, NodeId(2), 0.5, 100.0);
  FaultInjector injector(net, plan);
  std::optional<Seconds> elapsed;
  sim.schedule(0.0, [&] {
    // 1 MB at 8 Mbit/s would be 1 s; at half capacity it takes 2 s.
    net.start_message(NodeId(1), NodeId(2), megabytes(1.0),
                      [&](bool ok, Seconds e) {
                        ASSERT_TRUE(ok);
                        elapsed = e;
                      });
  });
  sim.run();
  ASSERT_TRUE(elapsed.has_value());
  EXPECT_NEAR(*elapsed, 2.0, 0.05);
  EXPECT_EQ(injector.brownouts_applied(), 1u);
  EXPECT_NEAR(net.flows().capacity_factor(NodeId(2)), 0.5, 1e-12);
  sim.run_until(150.0);  // the restoring event is a daemon: advance past it
  EXPECT_NEAR(net.flows().capacity_factor(NodeId(2)), 1.0, 1e-12);
}

}  // namespace
}  // namespace peerlab::net
