// Arena contract tests: geometric growth, O(1) reuse after reset,
// alignment guarantees, and the slab-consolidation discipline that
// converges a warmed arena on one high-water-mark slab.

#include "peerlab/mem/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

namespace peerlab::mem {
namespace {

TEST(Arena, HandsOutDistinctWritableBlocks) {
  Arena arena;
  auto* a = static_cast<std::uint8_t*>(arena.allocate(64));
  auto* b = static_cast<std::uint8_t*>(arena.allocate(64));
  ASSERT_NE(a, b);
  std::memset(a, 0xAA, 64);
  std::memset(b, 0xBB, 64);
  EXPECT_EQ(0xAA, a[0]);
  EXPECT_EQ(0xBB, b[63]);
  EXPECT_GE(arena.used(), 128u);
}

TEST(Arena, AlignmentIsHonoured) {
  Arena arena;
  for (const std::size_t align : {1u, 2u, 4u, 8u, 16u}) {
    arena.allocate(1);  // misalign the cursor on purpose
    void* p = arena.allocate(8, align);
    EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(p) % align)
        << "requested alignment " << align;
  }
  // Over-aligned requests (beyond max_align_t) fall back to a dedicated
  // slab but must still satisfy the alignment.
  void* wide = arena.allocate(64, 64);
  EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(wide) % 64);
}

TEST(Arena, GrowsGeometricallyPastTheFirstSlab) {
  Arena arena(256);
  const std::size_t initial = [&] {
    arena.allocate(1);
    return arena.capacity();
  }();
  // Exhaust well past the first slab.
  for (int i = 0; i < 64; ++i) arena.allocate(256);
  EXPECT_GT(arena.capacity(), initial);
  EXPECT_GT(arena.slab_count(), 1u);
}

TEST(Arena, ResetReusesCapacityWithoutNewSlabs) {
  Arena arena(512);
  for (int i = 0; i < 32; ++i) arena.allocate(128);
  arena.reset();
  const std::size_t capacity = arena.capacity();
  const std::size_t slabs = arena.slab_count();
  EXPECT_EQ(0u, arena.used());
  // A workload within the high-water mark must be served from the
  // retained slab: capacity and slab count stay put.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 8; ++i) arena.allocate(128);
    arena.reset();
    EXPECT_EQ(capacity, arena.capacity());
    EXPECT_EQ(slabs, arena.slab_count());
  }
}

TEST(Arena, ResetConsolidatesToTheBiggestSlab) {
  Arena arena(256);
  // Force several growth steps, leaving multiple slabs behind.
  for (int i = 0; i < 100; ++i) arena.allocate(200);
  ASSERT_GT(arena.slab_count(), 1u);
  arena.reset();
  EXPECT_EQ(1u, arena.slab_count());
  // The kept slab is the biggest one: a repeat of the same workload
  // fits in fewer slabs than the cold run needed.
  const std::size_t capacity = arena.capacity();
  for (int i = 0; i < 100; ++i) arena.allocate(200);
  EXPECT_GE(arena.capacity(), capacity);
}

TEST(Arena, MoveTransfersSlabsAndLeavesSourceUsable) {
  Arena a(256);
  auto* p = static_cast<std::uint8_t*>(a.allocate(32));
  std::memset(p, 0x5A, 32);
  Arena b(std::move(a));
  EXPECT_EQ(0x5A, p[31]);  // slab changed owner, not address
  EXPECT_EQ(0u, a.slab_count());
  a.allocate(16);  // moved-from arena grows a fresh slab on demand
  EXPECT_GE(a.slab_count(), 1u);
}

TEST(ScratchVector, BuildsOnTheArenaAndSurvivesReset) {
  Arena arena;
  for (int round = 0; round < 3; ++round) {
    arena.reset();
    auto v = make_scratch<int>(arena, 100);
    for (int i = 0; i < 100; ++i) v.push_back(i);
    EXPECT_EQ(4950, std::accumulate(v.begin(), v.end(), 0));
    EXPECT_GE(arena.used(), 100 * sizeof(int));
  }
  // Steady state: the retained slab serves each round, no growth.
  arena.reset();
  const std::size_t capacity = arena.capacity();
  auto v = make_scratch<double>(arena, 50);
  for (int i = 0; i < 50; ++i) v.push_back(i * 0.5);
  EXPECT_EQ(capacity, arena.capacity());
}

}  // namespace
}  // namespace peerlab::mem
