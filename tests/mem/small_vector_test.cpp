// small_vector contract tests: inline storage up to N, heap spill past
// it, value semantics (copy, move, steal of a heap buffer), and the
// destruction discipline for non-trivial element types.

#include "peerlab/mem/small_vector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace peerlab::mem {
namespace {

TEST(SmallVector, StaysInlineUpToCapacity) {
  small_vector<int, 4> v;
  EXPECT_TRUE(v.inline_storage());
  EXPECT_EQ(4u, v.capacity());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.inline_storage());
  EXPECT_EQ(4u, v.size());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(i, v[static_cast<std::size_t>(i)]);
}

TEST(SmallVector, SpillsToHeapPastInlineCapacity) {
  small_vector<int, 4> v;
  for (int i = 0; i < 9; ++i) v.push_back(i);
  EXPECT_FALSE(v.inline_storage());
  EXPECT_GE(v.capacity(), 9u);
  EXPECT_EQ(9u, v.size());
  for (int i = 0; i < 9; ++i) EXPECT_EQ(i, v[static_cast<std::size_t>(i)]);
  // Never shrinks back inline: clearing keeps the heap buffer.
  v.clear();
  EXPECT_FALSE(v.inline_storage());
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, GrowthPreservesNonTrivialElements) {
  small_vector<std::string, 2> v;
  for (int i = 0; i < 20; ++i) v.push_back("value-" + std::to_string(i));
  ASSERT_EQ(20u, v.size());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ("value-" + std::to_string(i), v[static_cast<std::size_t>(i)]);
  }
}

TEST(SmallVector, MoveStealsHeapBuffer) {
  small_vector<int, 2> v;
  for (int i = 0; i < 8; ++i) v.push_back(i);
  const int* buffer = v.data();
  small_vector<int, 2> w(std::move(v));
  EXPECT_EQ(buffer, w.data());  // adopted wholesale, no copy
  EXPECT_EQ(8u, w.size());
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.inline_storage());
  v.push_back(42);  // moved-from vector is reusable
  EXPECT_EQ(42, v[0]);
}

TEST(SmallVector, MoveOfInlineContentsMovesElementwise) {
  small_vector<std::unique_ptr<int>, 4> v;
  v.push_back(std::make_unique<int>(7));
  v.push_back(std::make_unique<int>(11));
  small_vector<std::unique_ptr<int>, 4> w(std::move(v));
  ASSERT_EQ(2u, w.size());
  EXPECT_EQ(7, *w[0]);
  EXPECT_EQ(11, *w[1]);
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, CopyAndAssignment) {
  small_vector<int, 3> v{1, 2, 3, 4, 5};
  small_vector<int, 3> w(v);
  EXPECT_EQ(5u, w.size());
  EXPECT_TRUE(std::equal(v.begin(), v.end(), w.begin()));
  small_vector<int, 3> x;
  x = v;
  EXPECT_TRUE(std::equal(v.begin(), v.end(), x.begin()));
  v.clear();
  EXPECT_EQ(5u, w.size());  // copies are independent
}

TEST(SmallVector, ResizePopBackAndSort) {
  small_vector<int, 4> v{5, 1, 4, 2, 3};
  std::sort(v.begin(), v.end());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(i + 1, v[static_cast<std::size_t>(i)]);
  v.pop_back();
  EXPECT_EQ(4u, v.size());
  EXPECT_EQ(4, v.back());
  v.resize(6);  // value-initialised growth
  EXPECT_EQ(6u, v.size());
  EXPECT_EQ(0, v[4]);
  EXPECT_EQ(0, v[5]);
  v.resize(2);
  EXPECT_EQ(2u, v.size());
  EXPECT_EQ(2, v.back());
}

TEST(SmallVector, SpanConversion) {
  small_vector<int, 4> v{1, 2, 3};
  const std::span<const int> view = v;
  EXPECT_EQ(3u, view.size());
  EXPECT_EQ(v.data(), view.data());
}

}  // namespace
}  // namespace peerlab::mem
