#include "peerlab/planetlab/profiles.hpp"

#include <gtest/gtest.h>

#include "peerlab/common/check.hpp"

namespace peerlab::planetlab {
namespace {

TEST(Profiles, PetitionMeansMatchFigure2) {
  const auto profiles = simple_client_profiles();
  ASSERT_EQ(profiles.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(profiles[static_cast<std::size_t>(i)].control_delay_mean,
                     paper::kPetitionSeconds[i])
        << "SC" << (i + 1);
  }
}

TEST(Profiles, Sc7IsTheStragglerOnEveryAxis) {
  const auto profiles = simple_client_profiles();
  const auto& sc7 = profiles[6];
  for (std::size_t i = 0; i < 8; ++i) {
    if (i == 6) continue;
    EXPECT_GT(sc7.control_delay_mean, profiles[i].control_delay_mean);
    EXPECT_LT(sc7.uplink_mbps, profiles[i].uplink_mbps);
    EXPECT_LE(sc7.cpu_ghz, profiles[i].cpu_ghz);
    EXPECT_GE(sc7.base_load, profiles[i].base_load);
  }
}

TEST(Profiles, FastPeersAreSnappyAndQuick) {
  const auto profiles = simple_client_profiles();
  for (const int fast : {2, 4, 8}) {
    const auto& p = profiles[static_cast<std::size_t>(fast - 1)];
    EXPECT_LT(p.control_delay_mean, 0.1) << "SC" << fast;
    EXPECT_GE(p.uplink_mbps, 9.0) << "SC" << fast;
  }
}

TEST(Profiles, PricesTrackCpuQuality) {
  const auto profiles = simple_client_profiles();
  // SC7 is the cheapest, the fast peers the priciest.
  for (std::size_t i = 0; i < 8; ++i) {
    if (i == 6) continue;
    EXPECT_LT(profiles[6].price_per_cpu_second, profiles[i].price_per_cpu_second);
  }
}

TEST(Profiles, ProfilesCarryCatalogIdentity) {
  const auto p = simple_client_profile(7);
  EXPECT_EQ(p.hostname, "planetlab1.itwm.fhg.de");
  EXPECT_EQ(p.country, "DE");
  EXPECT_NE(p.location.latitude_deg, 0.0);
}

TEST(Profiles, IndexValidation) {
  EXPECT_THROW(simple_client_profile(0), InvariantError);
  EXPECT_THROW(simple_client_profile(9), InvariantError);
}

TEST(Profiles, BrokerIsWellProvisioned) {
  const auto b = broker_profile();
  EXPECT_GE(b.uplink_mbps, 50.0);
  EXPECT_LT(b.control_delay_mean, 0.05);
  EXPECT_GE(b.cpu_slots, 2);
}

TEST(Profiles, SliceNodesAreHeterogeneousButValid) {
  int ordinal = 0;
  for (const auto& entry : table1()) {
    const auto p = slice_node_profile(entry, ordinal++);
    EXPECT_GT(p.cpu_ghz, 0.0);
    EXPECT_GT(p.uplink_mbps, 0.0);
    EXPECT_GT(p.control_delay_mean, 0.0);
  }
}

TEST(Profiles, EffectiveSpeedGapSupportsFigure7) {
  // SC7's effective compute is several times slower than SC2's.
  const auto sc2 = simple_client_profile(2);
  const auto sc7 = simple_client_profile(7);
  const double sc2_eff = sc2.cpu_ghz * (1.0 - sc2.base_load);
  const double sc7_eff = sc7.cpu_ghz * (1.0 - sc7.base_load);
  EXPECT_GT(sc2_eff / sc7_eff, 4.0);
}

}  // namespace
}  // namespace peerlab::planetlab
