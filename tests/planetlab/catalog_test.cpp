#include "peerlab/planetlab/catalog.hpp"

#include <gtest/gtest.h>

#include <set>

namespace peerlab::planetlab {
namespace {

TEST(Catalog, TwentyFiveSliceNodes) {
  EXPECT_EQ(table1().size(), 25u);
}

TEST(Catalog, HostnamesAreUnique) {
  std::set<std::string> names;
  for (const auto& entry : table1()) {
    EXPECT_TRUE(names.insert(entry.hostname).second) << entry.hostname;
  }
}

TEST(Catalog, ExactlyEightSimpleClients) {
  int count = 0;
  std::set<int> indices;
  for (const auto& entry : table1()) {
    if (entry.simple_client_index > 0) {
      ++count;
      EXPECT_TRUE(indices.insert(entry.simple_client_index).second);
    }
  }
  EXPECT_EQ(count, 8);
  EXPECT_EQ(*indices.begin(), 1);
  EXPECT_EQ(*indices.rbegin(), 8);
}

TEST(Catalog, SimpleClientsMatchThePapersList) {
  const auto scs = simple_clients();
  ASSERT_EQ(scs.size(), 8u);
  EXPECT_EQ(scs[0].hostname, "ait05.us.es");
  EXPECT_EQ(scs[1].hostname, "planetlab1.hiit.fi");
  EXPECT_EQ(scs[2].hostname, "planetlab01.cs.tcd.ie");
  EXPECT_EQ(scs[3].hostname, "planetlab1.csg.unizh.ch");
  EXPECT_EQ(scs[4].hostname, "edi.tkn.tu-berlin.de");
  EXPECT_EQ(scs[5].hostname, "lsirextpc01.epfl.ch");
  EXPECT_EQ(scs[6].hostname, "planetlab1.itwm.fhg.de");
  EXPECT_EQ(scs[7].hostname, "planetlab1.ssvl.kth.se");
}

TEST(Catalog, SimpleClientsSpanManyEuCountries) {
  std::set<std::string> countries;
  for (const auto& sc : simple_clients()) {
    countries.insert(sc.country);
  }
  // The paper says "seven EU countries"; the hostnames resolve to six
  // distinct ones (CH and DE both appear twice) — we keep the
  // hostnames authoritative.
  EXPECT_EQ(countries.size(), 6u);
  EXPECT_TRUE(countries.contains("ES"));
  EXPECT_TRUE(countries.contains("FI"));
  EXPECT_TRUE(countries.contains("IE"));
  EXPECT_TRUE(countries.contains("CH"));
  EXPECT_TRUE(countries.contains("DE"));
  EXPECT_TRUE(countries.contains("SE"));
}

TEST(Catalog, CoordinatesAreSane) {
  for (const auto& entry : table1()) {
    EXPECT_GE(entry.location.latitude_deg, -90.0);
    EXPECT_LE(entry.location.latitude_deg, 90.0);
    EXPECT_GE(entry.location.longitude_deg, -180.0);
    EXPECT_LE(entry.location.longitude_deg, 180.0);
    EXPECT_FALSE(entry.location.latitude_deg == 0.0 && entry.location.longitude_deg == 0.0)
        << entry.hostname << " has no coordinates";
  }
}

TEST(Catalog, BrokerIsTheNozomiCluster) {
  EXPECT_EQ(broker_host().hostname, "nozomi.lsi.upc.edu");
  EXPECT_EQ(broker_host().country, "ES");
}

TEST(Catalog, FindLocatesEntries) {
  ASSERT_NE(find("planetlab1.itwm.fhg.de"), nullptr);
  EXPECT_EQ(find("planetlab1.itwm.fhg.de")->simple_client_index, 7);
  ASSERT_NE(find("nozomi.lsi.upc.edu"), nullptr);
  EXPECT_EQ(find("unknown.example"), nullptr);
}

TEST(Catalog, PaperReferenceValuesAreTheFigures) {
  EXPECT_DOUBLE_EQ(paper::kPetitionSeconds[0], 12.86);
  EXPECT_DOUBLE_EQ(paper::kPetitionSeconds[6], 27.13);
  EXPECT_DOUBLE_EQ(paper::kSixteenPartMinutes, 1.7);
}

}  // namespace
}  // namespace peerlab::planetlab
