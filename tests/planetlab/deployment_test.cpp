#include "peerlab/planetlab/deployment.hpp"

#include <gtest/gtest.h>

namespace peerlab::planetlab {
namespace {

TEST(Deployment, ScDeploymentBootsAndRegistersEveryone) {
  sim::Simulator sim(1);
  Deployment dep(sim);
  EXPECT_EQ(dep.client_count(), 8u);
  dep.boot();
  EXPECT_EQ(dep.broker().registered_clients().size(), 8u);
  for (int i = 1; i <= 8; ++i) {
    EXPECT_TRUE(dep.broker().online(dep.sc_peer(i))) << "SC" << i;
  }
}

TEST(Deployment, ScLookupMatchesProfiles) {
  sim::Simulator sim(1);
  Deployment dep(sim);
  const auto& topo = dep.network().topology();
  EXPECT_EQ(topo.node(dep.sc(7).node()).profile().hostname, "planetlab1.itwm.fhg.de");
  EXPECT_EQ(topo.node(dep.sc(1).node()).profile().hostname, "ait05.us.es");
  EXPECT_THROW((void)dep.sc(9), InvariantError);
}

TEST(Deployment, BrokerLivesOnTheClusterNode) {
  sim::Simulator sim(1);
  Deployment dep(sim);
  const auto& profile = dep.network().topology().node(dep.broker().node()).profile();
  EXPECT_EQ(profile.hostname, "nozomi.lsi.upc.edu");
}

TEST(Deployment, FullSliceDeploysTwentyFiveClients) {
  sim::Simulator sim(1);
  DeploymentOptions opts;
  opts.full_slice = true;
  opts.boot_time = 90.0;
  Deployment dep(sim, opts);
  EXPECT_EQ(dep.client_count(), 25u);
  dep.boot();
  EXPECT_EQ(dep.broker().registered_clients().size(), 25u);
  // SC lookups still work inside the full slice.
  EXPECT_EQ(dep.network().topology().node(dep.sc(2).node()).profile().hostname,
            "planetlab1.hiit.fi");
}

TEST(Deployment, DeterministicAcrossSeeds) {
  auto petition_sample = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    Deployment dep(sim);
    return dep.network().sample_control_delay(dep.broker().node(), dep.sc(7).node());
  };
  EXPECT_DOUBLE_EQ(petition_sample(42), petition_sample(42));
  EXPECT_NE(petition_sample(42), petition_sample(43));
}

TEST(Deployment, Sc7PetitionDelayDwarfsSc2) {
  sim::Simulator sim(5);
  Deployment dep(sim);
  double sc7 = 0.0, sc2 = 0.0;
  for (int i = 0; i < 50; ++i) {
    sc7 += dep.network().sample_control_delay(dep.broker().node(), dep.sc(7).node());
    sc2 += dep.network().sample_control_delay(dep.broker().node(), dep.sc(2).node());
  }
  EXPECT_GT(sc7 / sc2, 50.0);
}

}  // namespace
}  // namespace peerlab::planetlab
