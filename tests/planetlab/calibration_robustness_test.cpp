// Seed robustness of the calibration: the figure shapes must not be an
// artifact of one lucky seed. These tests sample the calibrated models
// directly (no protocol machinery) across many seeds and check the
// orderings the figures rely on.

#include <gtest/gtest.h>

#include "peerlab/planetlab/deployment.hpp"

namespace peerlab::planetlab {
namespace {

class SeedRobustnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedRobustnessTest, PetitionOrderingHoldsInExpectation) {
  sim::Simulator sim(GetParam());
  Deployment dep(sim);
  // 30 control-delay samples per SC, averaged: the Figure 2 ordering
  // (SC7 > SC1 > SC5 > SC3 > fast peers) must hold.
  std::array<double, 8> mean{};
  for (int i = 1; i <= 8; ++i) {
    double sum = 0.0;
    for (int s = 0; s < 30; ++s) {
      sum += dep.network().sample_control_delay(dep.broker().node(), dep.sc(i).node());
    }
    mean[static_cast<std::size_t>(i - 1)] = sum / 30.0;
  }
  EXPECT_GT(mean[6], mean[0]);  // SC7 > SC1
  EXPECT_GT(mean[0], mean[4]);  // SC1 > SC5
  EXPECT_GT(mean[4], mean[2]);  // SC5 > SC3
  EXPECT_GT(mean[2], mean[5]);  // SC3 > SC6
  for (const int fast : {1, 3, 7}) {
    EXPECT_LT(mean[static_cast<std::size_t>(fast)], 0.5) << "SC" << (fast + 1);
  }
}

TEST_P(SeedRobustnessTest, Sc7IsTheComputeStragglerInExpectation) {
  sim::Simulator sim(GetParam() * 13 + 1);
  Deployment dep(sim);
  std::array<double, 8> mean{};
  for (int i = 1; i <= 8; ++i) {
    auto& node = dep.network().topology().node(dep.sc(i).node());
    double sum = 0.0;
    for (int s = 0; s < 30; ++s) sum += node.sample_effective_speed();
    mean[static_cast<std::size_t>(i - 1)] = sum / 30.0;
  }
  for (std::size_t i = 0; i < 8; ++i) {
    if (i == 6) continue;
    EXPECT_LT(mean[6], mean[i]) << "SC7 vs SC" << (i + 1);
  }
}

TEST_P(SeedRobustnessTest, DegradationMakesWholeFilesLoseAtEverySeed) {
  // Pure model arithmetic (seed-independent), asserted per seed anyway
  // as a guard against accidental per-seed configuration drift.
  sim::Simulator sim(GetParam());
  Deployment dep(sim);
  const auto& degradation = dep.network().degradation();
  for (int i = 1; i <= 8; ++i) {
    const auto& profile = dep.network().topology().node(dep.sc(i).node()).profile();
    const Seconds whole =
        wire_time(100 * kMegabyte, degradation.cap(profile.downlink_mbps, 100 * kMegabyte));
    const Seconds part16 =
        16.0 * wire_time(100 * kMegabyte / 16,
                         degradation.cap(profile.downlink_mbps, 100 * kMegabyte / 16));
    EXPECT_GT(whole / part16, 8.0) << "SC" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustnessTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u,
                                           144u, 233u));

}  // namespace
}  // namespace peerlab::planetlab
