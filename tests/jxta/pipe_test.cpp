#include "peerlab/jxta/pipe.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "peerlab/common/check.hpp"

namespace peerlab::jxta {
namespace {

// Node 1 = broker/rendezvous, nodes 2 and 3 = edge peers.
struct World {
  explicit World(std::uint64_t seed = 1) : sim(seed) {
    net::Topology topo(sim.rng().fork(1));
    for (const char* name : {"broker", "alpha", "beta"}) {
      net::NodeProfile p;
      p.hostname = name;
      p.control_delay_mean = 0.02;
      p.control_delay_sigma = 0.0;
      p.loss_per_megabyte = 0.0;
      topo.add_node(p);
    }
    net::NetworkConfig cfg;
    cfg.datagram_loss = 0.0;
    network.emplace(sim, std::move(topo), cfg);
    fabric.emplace(*network);
    rendezvous.emplace(sim);
    rdv_directory.enroll(NodeId(1), *rendezvous);
    broker_disc.emplace(fabric->attach(NodeId(1)), rdv_directory, PeerId(1), NodeId(1));
    broker_disc->serve_rendezvous_queries();
    alpha_disc.emplace(fabric->attach(NodeId(2)), rdv_directory, PeerId(2), NodeId(1));
    beta_disc.emplace(fabric->attach(NodeId(3)), rdv_directory, PeerId(3), NodeId(1));
    alpha_pipes.emplace(fabric->endpoint(NodeId(2)), *alpha_disc, pipe_directory);
    beta_pipes.emplace(fabric->endpoint(NodeId(3)), *beta_disc, pipe_directory);
  }

  sim::Simulator sim;
  std::optional<net::Network> network;
  std::optional<transport::TransportFabric> fabric;
  std::optional<RendezvousIndex> rendezvous;
  RendezvousDirectory rdv_directory;
  PipeDirectory pipe_directory;
  std::optional<DiscoveryService> broker_disc, alpha_disc, beta_disc;
  std::optional<PipeService> alpha_pipes, beta_pipes;
};

TEST(PipeDirectory, CreateDestroyLifecycle) {
  PipeDirectory dir;
  const PipeId p1 = dir.create(NodeId(4));
  const PipeId p2 = dir.create(NodeId(5));
  EXPECT_NE(p1, p2);
  EXPECT_EQ(dir.host_of(p1), NodeId(4));
  EXPECT_EQ(dir.host_of(p2), NodeId(5));
  dir.destroy(p1);
  EXPECT_FALSE(dir.host_of(p1).valid());
}

TEST(Pipe, BindResolvesThroughDiscoveryAndDelivers) {
  World w;
  std::vector<PipeMessage> got;
  w.alpha_pipes->create_input_pipe("task-inbox", [&](const PipeMessage& m) { got.push_back(m); });

  std::optional<PipeId> bound_pipe;
  // Give the advertisement time to reach the rendezvous.
  w.sim.schedule(1.0, [&] {
    w.beta_pipes->bind_output("task-inbox", [&](bool ok, PipeId pipe) {
      ASSERT_TRUE(ok);
      bound_pipe = pipe;
      w.beta_pipes->send(pipe, kilobytes(2.0), /*tag=*/42);
      w.beta_pipes->send(pipe, kilobytes(2.0), /*tag=*/43);
    });
  });
  w.sim.run();
  ASSERT_TRUE(bound_pipe.has_value());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].tag, 42);
  EXPECT_EQ(got[1].tag, 43);
  EXPECT_EQ(got[0].from, NodeId(3));
  EXPECT_EQ(got[0].pipe, *bound_pipe);
  EXPECT_EQ(got[0].size, kilobytes(2.0));
  EXPECT_EQ(w.alpha_pipes->messages_received(), 2u);
}

TEST(Pipe, BindFailsForUnknownName) {
  World w;
  std::optional<bool> ok;
  w.beta_pipes->bind_output("nonexistent", [&](bool success, PipeId) { ok = success; });
  w.sim.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);
}

TEST(Pipe, BindFailsWhenPipeClosedAfterAdvertising) {
  World w;
  const PipeId pipe = w.alpha_pipes->create_input_pipe("ephemeral", [](const PipeMessage&) {});
  std::optional<bool> ok;
  w.sim.schedule(1.0, [&] {
    w.alpha_pipes->close_input_pipe(pipe);  // advert survives, pipe doesn't
    w.beta_pipes->bind_output("ephemeral", [&](bool success, PipeId) { ok = success; });
  });
  w.sim.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);
}

TEST(Pipe, MessagesToClosedInputPipeAreDroppedSilently) {
  World w;
  int received = 0;
  const PipeId pipe =
      w.alpha_pipes->create_input_pipe("inbox", [&](const PipeMessage&) { ++received; });
  w.sim.schedule(1.0, [&] {
    w.beta_pipes->bind_output("inbox", [&](bool ok, PipeId out) {
      ASSERT_TRUE(ok);
      w.beta_pipes->send(out, 512, 1);
      // Close before the message lands (in-flight control delay).
      w.alpha_pipes->close_input_pipe(pipe);
    });
  });
  w.sim.run();
  EXPECT_EQ(received, 0);
}

TEST(Pipe, SendOnUnboundPipeThrows) {
  World w;
  EXPECT_THROW(w.beta_pipes->send(PipeId(777), 512), InvariantError);
}

TEST(Pipe, TwoBindersShareOneInputPipe) {
  World w;
  std::vector<NodeId> senders;
  w.alpha_pipes->create_input_pipe("shared", [&](const PipeMessage& m) {
    senders.push_back(m.from);
  });
  // A third service on the broker node binds too.
  DiscoveryService broker_disc2 = DiscoveryService(
      w.fabric->endpoint(NodeId(1)), w.rdv_directory, PeerId(1), NodeId(1));
  (void)broker_disc2;
  w.sim.schedule(1.0, [&] {
    w.beta_pipes->bind_output("shared", [&](bool ok, PipeId pipe) {
      ASSERT_TRUE(ok);
      w.beta_pipes->send(pipe, 512, 7);
    });
  });
  w.sim.run();
  ASSERT_EQ(senders.size(), 1u);
  EXPECT_EQ(senders[0], NodeId(3));
}

TEST(Pipe, InputPipeValidation) {
  World w;
  EXPECT_THROW(w.alpha_pipes->create_input_pipe("", [](const PipeMessage&) {}),
               InvariantError);
  EXPECT_THROW(w.alpha_pipes->create_input_pipe("x", PipeService::Listener{}),
               InvariantError);
}

TEST(Pipe, InputPipeCountTracksLifecycle) {
  World w;
  EXPECT_EQ(w.alpha_pipes->input_pipes(), 0u);
  const PipeId a = w.alpha_pipes->create_input_pipe("a", [](const PipeMessage&) {});
  w.alpha_pipes->create_input_pipe("b", [](const PipeMessage&) {});
  EXPECT_EQ(w.alpha_pipes->input_pipes(), 2u);
  w.alpha_pipes->close_input_pipe(a);
  EXPECT_EQ(w.alpha_pipes->input_pipes(), 1u);
}

}  // namespace
}  // namespace peerlab::jxta
