#include "peerlab/jxta/discovery.hpp"

#include <gtest/gtest.h>

#include <optional>

namespace peerlab::jxta {
namespace {

// Two-node world: node 1 = broker (hosts the rendezvous), node 2 = edge.
struct World {
  explicit World(double datagram_loss = 0.0, std::uint64_t seed = 1) : sim(seed) {
    net::Topology topo(sim.rng().fork(1));
    for (const char* name : {"broker", "edge"}) {
      net::NodeProfile p;
      p.hostname = name;
      p.control_delay_mean = 0.02;
      p.control_delay_sigma = 0.0;
      p.loss_per_megabyte = 0.0;
      topo.add_node(p);
    }
    net::NetworkConfig cfg;
    cfg.datagram_loss = datagram_loss;
    network.emplace(sim, std::move(topo), cfg);
    fabric.emplace(*network);
    rendezvous.emplace(sim);
    directory.enroll(NodeId(1), *rendezvous);
    broker_discovery.emplace(fabric->attach(NodeId(1)), directory, PeerId(1), NodeId(1));
    broker_discovery->serve_rendezvous_queries();
    edge_discovery.emplace(fabric->attach(NodeId(2)), directory, PeerId(2), NodeId(1));
  }

  sim::Simulator sim;
  std::optional<net::Network> network;
  std::optional<transport::TransportFabric> fabric;
  std::optional<RendezvousIndex> rendezvous;
  RendezvousDirectory directory;
  std::optional<DiscoveryService> broker_discovery;
  std::optional<DiscoveryService> edge_discovery;
};

Advertisement peer_adv(const std::string& name) {
  Advertisement adv;
  adv.kind = AdvertisementKind::kPeer;
  adv.name = name;
  adv.home = NodeId(2);
  return adv;
}

TEST(Discovery, PublishPopulatesLocalCacheImmediately) {
  World w;
  w.edge_discovery->publish(peer_adv("edge-peer"), 600.0);
  AdvertisementQuery q;
  q.kind = AdvertisementKind::kPeer;
  const auto local = w.edge_discovery->lookup_local(q);
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0].name, "edge-peer");
  EXPECT_EQ(local[0].publisher, PeerId(2));
}

TEST(Discovery, PublishReachesRendezvousAfterControlDelay) {
  World w;
  w.edge_discovery->publish(peer_adv("edge-peer"), 600.0);
  EXPECT_EQ(w.rendezvous->size(), 0u);  // not yet: datagram in flight
  w.sim.run();
  EXPECT_EQ(w.rendezvous->size(), 1u);
}

TEST(Discovery, RepublishRefreshesLocalEdition) {
  World w;
  w.edge_discovery->publish(peer_adv("edge-peer"), 10.0);
  w.edge_discovery->publish(peer_adv("edge-peer"), 600.0);
  EXPECT_EQ(w.edge_discovery->local_cache_size(), 1u);
}

TEST(Discovery, RemoteQueryFindsPublishedAdvert) {
  World w;
  w.edge_discovery->publish(peer_adv("edge-peer"), 600.0);
  std::optional<std::vector<Advertisement>> results;
  w.sim.schedule(1.0, [&] {
    AdvertisementQuery q;
    q.kind = AdvertisementKind::kPeer;
    q.name = "edge-peer";
    w.edge_discovery->query_remote(q, [&](std::vector<Advertisement> advs) {
      results = std::move(advs);
    });
  });
  w.sim.run();
  ASSERT_TRUE(results.has_value());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].name, "edge-peer");
  EXPECT_EQ((*results)[0].home, NodeId(2));
}

TEST(Discovery, RemoteQueryEmptyWhenNothingMatches) {
  World w;
  std::optional<std::vector<Advertisement>> results;
  AdvertisementQuery q;
  q.kind = AdvertisementKind::kPipe;
  w.edge_discovery->query_remote(q, [&](std::vector<Advertisement> advs) {
    results = std::move(advs);
  });
  w.sim.run();
  ASSERT_TRUE(results.has_value());
  EXPECT_TRUE(results->empty());
}

TEST(Discovery, RemoteQuerySurvivesDatagramLoss) {
  World w(/*datagram_loss=*/0.3, /*seed=*/17);
  w.edge_discovery->publish(peer_adv("edge-peer"), 6000.0);
  int found = 0, attempts = 0;
  constexpr int kQueries = 20;
  for (int i = 0; i < kQueries; ++i) {
    w.sim.schedule(5.0 + i * 40.0, [&] {
      AdvertisementQuery q;
      q.kind = AdvertisementKind::kPeer;
      w.edge_discovery->query_remote(q, [&](std::vector<Advertisement> advs) {
        ++attempts;
        if (!advs.empty()) ++found;
      });
    });
  }
  w.sim.run();
  EXPECT_EQ(attempts, kQueries);
  // 3 attempts at 30% loss: the vast majority must succeed. (The
  // publish itself is also lossy, hence the generous bound.)
  EXPECT_GE(found, kQueries * 3 / 4);
}

TEST(Discovery, QueryToDeadRendezvousFailsCleanly) {
  World w;
  w.directory.withdraw(NodeId(1));
  w.broker_discovery.reset();  // rendezvous software gone
  std::optional<std::vector<Advertisement>> results;
  AdvertisementQuery q;
  w.edge_discovery->query_remote(q, [&](std::vector<Advertisement> advs) {
    results = std::move(advs);
  });
  w.sim.run();
  ASSERT_TRUE(results.has_value());
  EXPECT_TRUE(results->empty());
}

TEST(Discovery, LocalSweepDropsExpired) {
  World w;
  w.edge_discovery->publish(peer_adv("short-lived"), 5.0);
  w.edge_discovery->publish(peer_adv("long-lived"), 500.0);
  w.sim.schedule(10.0, [] {});
  w.sim.run();
  EXPECT_EQ(w.edge_discovery->sweep_local(), 1u);
  EXPECT_EQ(w.edge_discovery->local_cache_size(), 1u);
}

TEST(Discovery, ExpiredAdvertNeverReachesRendezvous) {
  World w;
  // Lifetime shorter than the control-plane delay: arrives dead.
  w.edge_discovery->publish(peer_adv("mayfly"), 0.001);
  w.sim.run();
  EXPECT_EQ(w.rendezvous->size(), 0u);
}

TEST(Discovery, SetRendezvousRedirectsQueries) {
  World w;
  // Stand up a second rendezvous on node 2 and re-point the broker's
  // own discovery service at it.
  RendezvousIndex second(w.sim);
  w.directory.enroll(NodeId(2), second);
  DiscoveryService edge_rdv(w.fabric->endpoint(NodeId(2)), w.directory, PeerId(2), NodeId(2));
  // Note: edge_rdv takes over the edge endpoint's discovery handlers.
  edge_rdv.serve_rendezvous_queries();

  Advertisement adv;
  adv.kind = AdvertisementKind::kContent;
  adv.name = "syllabus.pdf";
  adv.publisher = PeerId(9);
  adv.expires_at = w.sim.now() + 100.0;
  second.publish(adv);

  w.broker_discovery->set_rendezvous(NodeId(2));
  EXPECT_EQ(w.broker_discovery->rendezvous(), NodeId(2));
  std::optional<std::vector<Advertisement>> results;
  AdvertisementQuery q;
  q.kind = AdvertisementKind::kContent;
  w.broker_discovery->query_remote(q, [&](std::vector<Advertisement> advs) {
    results = std::move(advs);
  });
  w.sim.run();
  ASSERT_TRUE(results.has_value());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].name, "syllabus.pdf");
}

TEST(RendezvousDirectoryStore, ParkAndClaimRoundTrip) {
  RendezvousDirectory dir;
  std::vector<Advertisement> payload(3);
  payload[0].name = "x";
  const auto ticket = dir.park(payload);
  const auto claimed = dir.claim(ticket);
  ASSERT_EQ(claimed.size(), 3u);
  EXPECT_EQ(claimed[0].name, "x");
  EXPECT_TRUE(dir.claim(ticket).empty());  // single-shot
}

TEST(RendezvousDirectoryStore, QueriesArePeekedNotClaimed) {
  RendezvousDirectory dir;
  AdvertisementQuery q;
  q.name = "needle";
  const auto ticket = dir.park_query(q);
  ASSERT_NE(dir.peek_query(ticket), nullptr);
  EXPECT_EQ(dir.peek_query(ticket)->name, "needle");
  ASSERT_NE(dir.peek_query(ticket), nullptr);  // still there
  dir.release_query(ticket);
  EXPECT_EQ(dir.peek_query(ticket), nullptr);
}

}  // namespace
}  // namespace peerlab::jxta
