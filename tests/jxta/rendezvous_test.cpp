#include "peerlab/jxta/rendezvous.hpp"

#include <gtest/gtest.h>

#include "peerlab/common/check.hpp"

namespace peerlab::jxta {
namespace {

Advertisement peer_adv(PeerId publisher, const std::string& name, Seconds expires) {
  Advertisement adv;
  adv.kind = AdvertisementKind::kPeer;
  adv.publisher = publisher;
  adv.name = name;
  adv.expires_at = expires;
  return adv;
}

TEST(Rendezvous, PublishAssignsIdsAndCounts) {
  sim::Simulator sim(1);
  RendezvousIndex index(sim);
  const auto id1 = index.publish(peer_adv(PeerId(1), "a", 100.0));
  const auto id2 = index.publish(peer_adv(PeerId(2), "b", 100.0));
  EXPECT_TRUE(id1.valid());
  EXPECT_NE(id1, id2);
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.publishes(), 2u);
}

TEST(Rendezvous, RepublishReplacesSameEdition) {
  sim::Simulator sim(1);
  RendezvousIndex index(sim);
  index.publish(peer_adv(PeerId(1), "a", 100.0));
  index.publish(peer_adv(PeerId(1), "a", 200.0));
  EXPECT_EQ(index.size(), 1u);
  AdvertisementQuery q;
  q.kind = AdvertisementKind::kPeer;
  const auto results = index.query(q);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].expires_at, 200.0);
}

TEST(Rendezvous, DistinctPublishersDoNotCollide) {
  sim::Simulator sim(1);
  RendezvousIndex index(sim);
  index.publish(peer_adv(PeerId(1), "same-name", 100.0));
  index.publish(peer_adv(PeerId(2), "same-name", 100.0));
  EXPECT_EQ(index.size(), 2u);
}

TEST(Rendezvous, QueryFiltersExpired) {
  sim::Simulator sim(1);
  RendezvousIndex index(sim);
  index.publish(peer_adv(PeerId(1), "short", 5.0));
  index.publish(peer_adv(PeerId(2), "long", 500.0));
  sim.schedule(10.0, [] {});
  sim.run();
  AdvertisementQuery q;
  q.kind = AdvertisementKind::kPeer;
  const auto results = index.query(q);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].name, "long");
  EXPECT_EQ(index.size(), 2u);  // lazy: still stored until sweep
}

TEST(Rendezvous, SweepRemovesExpired) {
  sim::Simulator sim(1);
  RendezvousIndex index(sim);
  index.publish(peer_adv(PeerId(1), "short", 5.0));
  index.publish(peer_adv(PeerId(2), "long", 500.0));
  sim.schedule(10.0, [] {});
  sim.run();
  EXPECT_EQ(index.sweep(), 1u);
  EXPECT_EQ(index.size(), 1u);
}

TEST(Rendezvous, RevokeRemovesSpecificAdvert) {
  sim::Simulator sim(1);
  RendezvousIndex index(sim);
  index.publish(peer_adv(PeerId(1), "a", 100.0));
  EXPECT_TRUE(index.revoke(PeerId(1), AdvertisementKind::kPeer, "a"));
  EXPECT_FALSE(index.revoke(PeerId(1), AdvertisementKind::kPeer, "a"));
  EXPECT_EQ(index.size(), 0u);
}

TEST(Rendezvous, RevokeAllClearsAPeer) {
  sim::Simulator sim(1);
  RendezvousIndex index(sim);
  index.publish(peer_adv(PeerId(1), "a", 100.0));
  auto pipe = peer_adv(PeerId(1), "p", 100.0);
  pipe.kind = AdvertisementKind::kPipe;
  index.publish(pipe);
  index.publish(peer_adv(PeerId(2), "b", 100.0));
  EXPECT_EQ(index.revoke_all(PeerId(1)), 2u);
  EXPECT_EQ(index.size(), 1u);
}

TEST(Rendezvous, QueryResultsAreSortedById) {
  sim::Simulator sim(1);
  RendezvousIndex index(sim);
  for (int i = 0; i < 10; ++i) {
    index.publish(peer_adv(PeerId(static_cast<std::uint64_t>(i + 1)),
                           "peer" + std::to_string(i), 100.0));
  }
  AdvertisementQuery q;
  q.kind = AdvertisementKind::kPeer;
  const auto results = index.query(q);
  ASSERT_EQ(results.size(), 10u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LT(results[i - 1].id, results[i].id);
  }
}

TEST(Rendezvous, RejectsInvalidPublishes) {
  sim::Simulator sim(1);
  RendezvousIndex index(sim);
  Advertisement anon = peer_adv(PeerId{}, "x", 100.0);
  EXPECT_THROW(index.publish(anon), InvariantError);
  Advertisement stale = peer_adv(PeerId(1), "x", 0.0);
  EXPECT_THROW(index.publish(stale), InvariantError);
}

TEST(Rendezvous, QueryCounterIncrements) {
  sim::Simulator sim(1);
  RendezvousIndex index(sim);
  AdvertisementQuery q;
  (void)index.query(q);
  (void)index.query(q);
  EXPECT_EQ(index.queries(), 2u);
}

}  // namespace
}  // namespace peerlab::jxta
