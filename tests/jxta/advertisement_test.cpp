#include "peerlab/jxta/advertisement.hpp"

#include <gtest/gtest.h>

namespace peerlab::jxta {
namespace {

Advertisement sample_adv() {
  Advertisement adv;
  adv.id = AdvertisementId(1);
  adv.kind = AdvertisementKind::kPeer;
  adv.publisher = PeerId(5);
  adv.home = NodeId(3);
  adv.name = "planetlab1.example";
  adv.attributes["cpu_ghz"] = "1.2";
  adv.attributes["role"] = "simpleclient";
  adv.published_at = 10.0;
  adv.expires_at = 110.0;
  return adv;
}

TEST(Advertisement, KindNames) {
  EXPECT_STREQ(to_string(AdvertisementKind::kPeer), "peer");
  EXPECT_STREQ(to_string(AdvertisementKind::kPipe), "pipe");
  EXPECT_STREQ(to_string(AdvertisementKind::kPeerGroup), "peergroup");
  EXPECT_STREQ(to_string(AdvertisementKind::kContent), "content");
  EXPECT_STREQ(to_string(AdvertisementKind::kModule), "module");
}

TEST(Advertisement, ExpiryBoundary) {
  const auto adv = sample_adv();
  EXPECT_FALSE(adv.expired(10.0));
  EXPECT_FALSE(adv.expired(109.999));
  EXPECT_TRUE(adv.expired(110.0));
  EXPECT_TRUE(adv.expired(200.0));
}

TEST(Advertisement, AttributeLookup) {
  const auto adv = sample_adv();
  ASSERT_TRUE(adv.attribute("role").has_value());
  EXPECT_EQ(*adv.attribute("role"), "simpleclient");
  EXPECT_FALSE(adv.attribute("missing").has_value());
}

TEST(Advertisement, NumericAttributeParsesOrFallsBack) {
  const auto adv = sample_adv();
  EXPECT_DOUBLE_EQ(adv.numeric_attribute("cpu_ghz", 0.0), 1.2);
  EXPECT_DOUBLE_EQ(adv.numeric_attribute("missing", 7.5), 7.5);
  EXPECT_DOUBLE_EQ(adv.numeric_attribute("role", 7.5), 7.5);  // non-numeric
}

TEST(AdvertisementQuery, MatchesByKindAndLiveness) {
  const auto adv = sample_adv();
  AdvertisementQuery q;
  q.kind = AdvertisementKind::kPeer;
  EXPECT_TRUE(q.matches(adv, 50.0));
  EXPECT_FALSE(q.matches(adv, 110.0));  // expired
  q.kind = AdvertisementKind::kPipe;
  EXPECT_FALSE(q.matches(adv, 50.0));  // wrong kind
}

TEST(AdvertisementQuery, EmptyNameMatchesAnyName) {
  const auto adv = sample_adv();
  AdvertisementQuery q;
  q.kind = AdvertisementKind::kPeer;
  q.name.clear();
  EXPECT_TRUE(q.matches(adv, 50.0));
  q.name = "planetlab1.example";
  EXPECT_TRUE(q.matches(adv, 50.0));
  q.name = "other.example";
  EXPECT_FALSE(q.matches(adv, 50.0));
}

TEST(AdvertisementQuery, AttributeConstraintsMustAllHold) {
  const auto adv = sample_adv();
  AdvertisementQuery q;
  q.kind = AdvertisementKind::kPeer;
  q.attribute_equals["role"] = "simpleclient";
  EXPECT_TRUE(q.matches(adv, 50.0));
  q.attribute_equals["cpu_ghz"] = "1.2";
  EXPECT_TRUE(q.matches(adv, 50.0));
  q.attribute_equals["cpu_ghz"] = "3.0";
  EXPECT_FALSE(q.matches(adv, 50.0));
  q.attribute_equals.erase("cpu_ghz");
  q.attribute_equals["missing"] = "x";
  EXPECT_FALSE(q.matches(adv, 50.0));
}

}  // namespace
}  // namespace peerlab::jxta
