#include "peerlab/jxta/peergroup.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "peerlab/common/check.hpp"

namespace peerlab::jxta {
namespace {

TEST(PeerGroupRegistry, CreateIsIdempotentByName) {
  PeerGroupRegistry reg;
  const GroupId g1 = reg.create("workers", PeerId(1));
  const GroupId g2 = reg.create("workers", PeerId(2));
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(reg.group_count(), 1u);
  const GroupId g3 = reg.create("admins", PeerId(1));
  EXPECT_NE(g1, g3);
  EXPECT_EQ(reg.group_count(), 2u);
}

TEST(PeerGroupRegistry, CreatorIsFoundingMember) {
  PeerGroupRegistry reg;
  const GroupId g = reg.create("workers", PeerId(7));
  EXPECT_TRUE(reg.is_member(g, PeerId(7)));
  EXPECT_EQ(reg.members(g).size(), 1u);
}

TEST(PeerGroupRegistry, FindByName) {
  PeerGroupRegistry reg;
  const GroupId g = reg.create("workers", PeerId(1));
  ASSERT_TRUE(reg.find("workers").has_value());
  EXPECT_EQ(*reg.find("workers"), g);
  EXPECT_FALSE(reg.find("ghosts").has_value());
}

TEST(PeerGroupRegistry, JoinLeaveLifecycle) {
  PeerGroupRegistry reg;
  const GroupId g = reg.create("workers", PeerId(1));
  EXPECT_TRUE(reg.join(g, PeerId(2)));
  EXPECT_TRUE(reg.join(g, PeerId(2)));  // idempotent
  EXPECT_EQ(reg.members(g).size(), 2u);
  EXPECT_TRUE(reg.leave(g, PeerId(2)));
  EXPECT_FALSE(reg.leave(g, PeerId(2)));
  EXPECT_FALSE(reg.is_member(g, PeerId(2)));
}

TEST(PeerGroupRegistry, JoinUnknownGroupFails) {
  PeerGroupRegistry reg;
  EXPECT_FALSE(reg.join(GroupId(99), PeerId(1)));
  EXPECT_FALSE(reg.leave(GroupId(99), PeerId(1)));
  EXPECT_TRUE(reg.members(GroupId(99)).empty());
}

TEST(PeerGroupRegistry, EvictRemovesPeerEverywhere) {
  PeerGroupRegistry reg;
  const GroupId a = reg.create("a", PeerId(1));
  const GroupId b = reg.create("b", PeerId(1));
  reg.join(a, PeerId(5));
  reg.join(b, PeerId(5));
  EXPECT_EQ(reg.evict(PeerId(5)), 2u);
  EXPECT_FALSE(reg.is_member(a, PeerId(5)));
  EXPECT_FALSE(reg.is_member(b, PeerId(5)));
}

TEST(PeerGroupRegistry, Validation) {
  PeerGroupRegistry reg;
  EXPECT_THROW(reg.create("", PeerId(1)), InvariantError);
  EXPECT_THROW(reg.create("x", PeerId{}), InvariantError);
}

// ---- membership over the control plane ----

struct World {
  explicit World(double datagram_loss = 0.0, std::uint64_t seed = 1) : sim(seed) {
    net::Topology topo(sim.rng().fork(1));
    for (const char* name : {"broker", "edge"}) {
      net::NodeProfile p;
      p.hostname = name;
      p.control_delay_mean = 0.02;
      p.control_delay_sigma = 0.0;
      p.loss_per_megabyte = 0.0;
      topo.add_node(p);
    }
    net::NetworkConfig cfg;
    cfg.datagram_loss = datagram_loss;
    network.emplace(sim, std::move(topo), cfg);
    fabric.emplace(*network);
    directory.enroll(NodeId(1), registry);
    broker.emplace(fabric->attach(NodeId(1)), directory, PeerId(1), NodeId(1));
    broker->serve_registry();
    edge.emplace(fabric->attach(NodeId(2)), directory, PeerId(2), NodeId(1));
  }

  sim::Simulator sim;
  std::optional<net::Network> network;
  std::optional<transport::TransportFabric> fabric;
  PeerGroupRegistry registry;
  PeerGroupDirectory directory;
  std::optional<GroupMembership> broker, edge;
};

TEST(GroupMembership, JoinOverTheWireSucceeds) {
  World w;
  const GroupId g = w.registry.create("campus", PeerId(1));
  std::optional<bool> ok;
  w.edge->join(g, [&](bool success, GroupId joined) {
    ok = success;
    EXPECT_EQ(joined, g);
  });
  w.sim.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(*ok);
  EXPECT_TRUE(w.registry.is_member(g, PeerId(2)));
}

TEST(GroupMembership, JoinUnknownGroupReportsFailure) {
  World w;
  std::optional<bool> ok;
  w.edge->join(GroupId(404), [&](bool success, GroupId) { ok = success; });
  w.sim.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);
}

TEST(GroupMembership, JoinSurvivesLoss) {
  World w(/*datagram_loss=*/0.3, /*seed=*/13);
  const GroupId g = w.registry.create("campus", PeerId(1));
  int joined = 0;
  constexpr int kJoins = 10;
  for (int i = 0; i < kJoins; ++i) {
    w.sim.schedule(i * 50.0, [&] {
      w.edge->join(g, [&](bool success, GroupId) { joined += success ? 1 : 0; });
    });
  }
  w.sim.run();
  EXPECT_GE(joined, 8);  // 4 attempts at 30% loss/leg
}

TEST(GroupMembership, LeaveEventuallyRemovesMember) {
  World w;
  const GroupId g = w.registry.create("campus", PeerId(1));
  w.registry.join(g, PeerId(2));
  w.edge->leave(g);
  w.sim.run();
  EXPECT_FALSE(w.registry.is_member(g, PeerId(2)));
}

TEST(GroupMembership, JoinToDeadBrokerFails) {
  World w;
  const GroupId g = w.registry.create("campus", PeerId(1));
  w.directory.withdraw(NodeId(1));
  w.broker.reset();
  std::optional<bool> ok;
  w.edge->join(g, [&](bool success, GroupId) { ok = success; });
  w.sim.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);
}

}  // namespace
}  // namespace peerlab::jxta
