#include "peerlab/econ/economy.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "peerlab/common/check.hpp"
#include "peerlab/core/blind.hpp"

namespace peerlab::econ {
namespace {

using core::EconObjective;
using core::PeerSnapshot;
using core::SelectionContext;

PeerSnapshot peer(std::uint64_t id, double price = 1.0, GigaHertz cpu = 1.0) {
  PeerSnapshot p;
  p.peer = PeerId(id);
  p.node = NodeId(id);
  p.cpu_ghz = cpu;
  p.price_per_cpu_second = price;
  return p;
}

SelectionContext transfer_ctx(Bytes payload = megabytes(1.0)) {
  SelectionContext ctx;
  ctx.purpose = SelectionContext::Purpose::kFileTransfer;
  ctx.payload_size = payload;
  return ctx;
}

// ---- PriceBook ---------------------------------------------------------

TEST(PriceBook, BasePriceIsDeterministicAndBounded) {
  PricingConfig cfg;
  cfg.base_min = 0.5;
  cfg.base_max = 2.0;
  const PriceBook book(cfg);
  for (std::uint64_t id = 1; id <= 200; ++id) {
    const double price = book.base_price(PeerId(id));
    EXPECT_GE(price, cfg.base_min);
    EXPECT_LE(price, cfg.base_max);
    EXPECT_EQ(price, book.base_price(PeerId(id)));  // pure function
  }
  // Distinct peers draw distinct prices (splitmix64 never collides on
  // distinct inputs, and 200 draws over a continuum never tie).
  EXPECT_NE(book.base_price(PeerId(1)), book.base_price(PeerId(2)));
}

TEST(PriceBook, SeedRerollsTheSchedule) {
  PricingConfig a;
  PricingConfig b;
  b.seed = a.seed + 1;
  EXPECT_NE(PriceBook(a).base_price(PeerId(7)), PriceBook(b).base_price(PeerId(7)));
}

TEST(PriceBook, CpuCouplingMakesFastPeersPricier) {
  PricingConfig cfg;
  cfg.cpu_coupling = 1.0;  // fully CPU-proportional
  cfg.reference_cpu_ghz = 1.0;
  const PriceBook book(cfg);
  auto slow = peer(5, 1.0, 1.0);
  auto fast = peer(5, 1.0, 3.0);  // same id => same base draw
  EXPECT_NEAR(book.unit_price(fast), 3.0 * book.unit_price(slow), 1e-12);
}

TEST(PriceBook, BusySurchargeScalesWithBacklog) {
  PricingConfig cfg;
  cfg.cpu_coupling = 0.0;
  cfg.busy_surcharge = 0.5;
  const PriceBook book(cfg);
  auto idle = peer(9);
  auto busy = peer(9);
  busy.queued_tasks = 2;
  busy.active_transfers = 2;
  EXPECT_NEAR(book.unit_price(busy), 3.0 * book.unit_price(idle), 1e-12);
}

TEST(PriceBook, ReputationDiscountNeverGoesNegative) {
  PricingConfig cfg;
  cfg.cpu_coupling = 0.0;
  cfg.reputation_discount = 2.0;  // pathological: full distrust would be -100%
  const PriceBook book(cfg);
  auto distrusted = peer(3);
  distrusted.reputation = 0.0;
  EXPECT_GE(book.unit_price(distrusted), 0.0);
  auto spotless = peer(3);
  EXPECT_GT(book.unit_price(spotless), book.unit_price(distrusted));
}

TEST(PriceBook, ZeroDiscountIgnoresReputationExactly) {
  const PriceBook book;
  auto trusted = peer(4);
  auto distrusted = peer(4);
  distrusted.reputation = 0.1;
  EXPECT_EQ(book.unit_price(trusted), book.unit_price(distrusted));
}

// ---- EconEngine appraisal ---------------------------------------------

TEST(EconEngine, AppliesOnlyWhenEnabledAndConstrained) {
  EconConfig on;
  on.enabled = true;
  const EconEngine enabled(on);
  const EconEngine disabled;

  SelectionContext plain;
  SelectionContext dated = plain;
  dated.deadline = 100.0;
  SelectionContext budgeted = plain;
  budgeted.budget = 5.0;
  SelectionContext aimed = plain;
  aimed.objective = EconObjective::kEfficiency;

  EXPECT_FALSE(enabled.applies(plain));
  EXPECT_TRUE(enabled.applies(dated));
  EXPECT_TRUE(enabled.applies(budgeted));
  EXPECT_TRUE(enabled.applies(aimed));
  EXPECT_FALSE(disabled.applies(dated));
  EXPECT_FALSE(disabled.applies(budgeted));
}

TEST(EconEngine, AppraisalFlagsDeadlineAndBudget) {
  EconConfig cfg;
  cfg.enabled = true;
  cfg.estimator.default_rate_estimate = 8.0;  // 1 MB => 1 s service
  const EconEngine engine(cfg);

  auto ctx = transfer_ctx(megabytes(1.0));
  ctx.now = 10.0;
  const auto quick = engine.appraise(peer(1), ctx);
  EXPECT_NEAR(quick.service, 1.0, 1e-9);
  EXPECT_NEAR(quick.completion, 11.0, 1e-9);
  EXPECT_TRUE(quick.feasible());  // no constraints set

  ctx.deadline = 10.5;  // completion 11.0 blows it
  EXPECT_FALSE(engine.appraise(peer(1), ctx).meets_deadline);
  ctx.deadline = 20.0;
  EXPECT_TRUE(engine.appraise(peer(1), ctx).meets_deadline);

  ctx.budget = 1e-6;  // any positive quote blows it
  const auto broke = engine.appraise(peer(1), ctx);
  EXPECT_FALSE(broke.within_budget);
  EXPECT_FALSE(broke.feasible());
}

TEST(EconEngine, QuoteChargesServiceSecondsAtUnitPrice) {
  EconConfig cfg;
  cfg.enabled = true;
  cfg.estimator.default_rate_estimate = 8.0;
  const EconEngine engine(cfg);
  const auto ctx = transfer_ctx(megabytes(4.0));  // 4 s service
  const auto appraisal = engine.appraise(peer(6), ctx);
  EXPECT_NEAR(appraisal.cost, engine.prices().unit_price(peer(6)) * appraisal.service, 1e-12);
}

// ---- EconEngine admission ---------------------------------------------

/// Candidates with controlled prices: fix every base draw by searching
/// peer ids whose seeded base price lands in a narrow band is fragile,
/// so instead exploit cpu_coupling=0 and known ids — the ranking
/// assertions below only compare relative prices read back from the
/// book itself.
struct Admitted {
  std::vector<PeerSnapshot> candidates;
  std::vector<PeerId> ranking;
};

Admitted admit(EconEngine& engine, SelectionContext ctx, std::size_t n) {
  Admitted out;
  core::BlindModel blind;
  for (std::uint64_t id = 1; id <= n; ++id) out.candidates.push_back(peer(id));
  blind.rank_into(out.candidates, ctx, out.ranking);
  engine.admit_and_rank(out.candidates, ctx, out.ranking);
  return out;
}

TEST(EconEngine, CostOptimiseRanksCheapestFirst) {
  EconConfig cfg;
  cfg.enabled = true;
  cfg.default_objective = EconObjective::kCostOptimise;
  EconEngine engine(cfg);
  auto ctx = transfer_ctx();
  ctx.budget = 1e9;  // constrained, but nothing rejected
  const auto result = admit(engine, ctx, 16);
  ASSERT_EQ(result.ranking.size(), 16u);
  for (std::size_t i = 1; i < result.ranking.size(); ++i) {
    EXPECT_LE(engine.prices().base_price(result.ranking[i - 1]),
              engine.prices().base_price(result.ranking[i]))
        << "rank " << i;
  }
  EXPECT_EQ(engine.admitted(), 16u);
  EXPECT_EQ(engine.rejected(), 0u);
}

TEST(EconEngine, BudgetRejectsExpensiveCandidates) {
  EconConfig cfg;
  cfg.enabled = true;
  cfg.estimator.default_rate_estimate = 8.0;  // 1 MB => 1 s => cost = unit price
  EconEngine engine(cfg);
  auto ctx = transfer_ctx(megabytes(1.0));
  // Median-ish cut through the [0.5, 2.0] base band (cpu 1.0 keeps the
  // coupling factor at exactly 1).
  ctx.budget = 1.2;
  const auto result = admit(engine, ctx, 32);
  ASSERT_EQ(result.ranking.size(), 32u);  // nothing dropped, only re-ordered
  ASSERT_GT(engine.admitted(), 0u);
  ASSERT_GT(engine.rejected(), 0u);
  // Feasible prefix, infeasible tail.
  const std::size_t feasible = engine.admitted();
  for (std::size_t i = 0; i < result.ranking.size(); ++i) {
    const auto appraisal = engine.appraise(result.candidates[result.ranking[i].value() - 1],
                                           ctx);
    EXPECT_EQ(appraisal.feasible(), i < feasible) << "rank " << i;
  }
}

TEST(EconEngine, TimeOptimiseRanksFastestFirst) {
  EconConfig cfg;
  cfg.enabled = true;
  cfg.default_objective = EconObjective::kTimeOptimise;
  EconEngine engine(cfg);
  std::vector<PeerSnapshot> candidates;
  candidates.push_back(peer(1));
  auto backlogged = peer(2);
  backlogged.idle = false;
  backlogged.queued_tasks = 3;  // ready-time penalty
  candidates.push_back(backlogged);
  auto ctx = transfer_ctx();
  ctx.deadline = 1e9;
  std::vector<PeerId> ranking{PeerId(2), PeerId(1)};  // model liked the busy one
  engine.admit_and_rank(candidates, ctx, ranking);
  EXPECT_EQ(ranking.front(), PeerId(1));  // engine prefers the idle one
}

TEST(EconEngine, CostTimeBreaksCostTiesOnCompletion) {
  EconConfig cfg;
  cfg.enabled = true;
  cfg.pricing.base_min = 1.0;  // degenerate band: every base price ties
  cfg.pricing.base_max = 1.0;
  cfg.pricing.cpu_coupling = 0.0;
  cfg.pricing.busy_surcharge = 0.0;
  EconEngine engine(cfg);
  std::vector<PeerSnapshot> candidates;
  auto slow = peer(1);
  slow.idle = false;
  slow.queued_tasks = 4;
  candidates.push_back(slow);
  candidates.push_back(peer(2));
  auto ctx = transfer_ctx();
  ctx.budget = 1e9;
  std::vector<PeerId> ranking{PeerId(1), PeerId(2)};
  engine.admit_and_rank(candidates, ctx, ranking);
  // Costs tie (same price, same service estimate); completion decides.
  EXPECT_EQ(ranking.front(), PeerId(2));
}

TEST(EconEngine, PetitionObjectiveOverridesBrokerDefault) {
  EconConfig cfg;
  cfg.enabled = true;
  cfg.default_objective = EconObjective::kCostOptimise;
  const EconEngine engine(cfg);
  SelectionContext ctx;
  EXPECT_EQ(engine.objective_for(ctx), EconObjective::kCostOptimise);
  ctx.objective = EconObjective::kTimeOptimise;
  EXPECT_EQ(engine.objective_for(ctx), EconObjective::kTimeOptimise);
}

TEST(EconEngine, EfficiencyPrefersIdleFastResponsivePeers) {
  EconConfig cfg;
  cfg.enabled = true;
  const EconEngine engine(cfg);
  auto strong = peer(1, 1.0, 3.0);
  auto weak = peer(2, 1.0, 1.0);
  weak.idle = false;
  weak.queued_tasks = 4;
  EXPECT_GT(engine.efficiency_score(strong, 3.0), engine.efficiency_score(weak, 3.0));
  // Scores live in [0, 1].
  EXPECT_LE(engine.efficiency_score(strong, 3.0), 1.0);
  EXPECT_GE(engine.efficiency_score(weak, 3.0), 0.0);
}

TEST(EconEngine, ExhaustionLeavesModelOrderIntact) {
  EconConfig cfg;
  cfg.enabled = true;
  EconEngine engine(cfg);
  std::vector<PeerSnapshot> candidates{peer(1), peer(2), peer(3)};
  auto ctx = transfer_ctx(megabytes(64.0));
  ctx.budget = 1e-9;  // nobody can quote under this
  std::vector<PeerId> ranking{PeerId(3), PeerId(1), PeerId(2)};
  const std::vector<PeerId> before = ranking;
  const auto verdict = engine.admit_and_rank(candidates, ctx, ranking);
  EXPECT_TRUE(verdict.exhausted);
  EXPECT_EQ(verdict.feasible, 0u);
  EXPECT_EQ(ranking, before);  // least-bad: the model's order stands
  EXPECT_EQ(engine.exhausted(), 1u);
  EXPECT_EQ(engine.rejected(), 3u);
}

TEST(EconEngine, AssignmentHintsRaiseAppraisalsUntilExpiry) {
  EconConfig cfg;
  cfg.enabled = true;
  cfg.assignment_hold = 30.0;
  EconEngine engine(cfg);
  const PeerSnapshot p = peer(1);
  auto ctx = transfer_ctx();
  ctx.now = 100.0;

  const Appraisal fresh = engine.appraise(p, ctx);
  engine.note_assignment(PeerId(1), ctx.now);
  EXPECT_EQ(engine.pending_assignments(PeerId(1), ctx.now), 1);
  EXPECT_EQ(engine.pending_assignments(PeerId(2), ctx.now), 0);

  // The hinted peer appraises busier: later ready, pricier (busy
  // surcharge), and its loaded view is no longer idle.
  const Appraisal loaded = engine.appraise(p, ctx);
  EXPECT_GT(loaded.ready, fresh.ready);
  EXPECT_GT(loaded.cost, fresh.cost);
  EXPECT_FALSE(engine.loaded_view(p, ctx.now).idle);

  // Hints stack per assignment and expire after the hold.
  engine.note_assignment(PeerId(1), ctx.now);
  EXPECT_EQ(engine.pending_assignments(PeerId(1), ctx.now), 2);
  ctx.now += cfg.assignment_hold + 1.0;
  EXPECT_EQ(engine.pending_assignments(PeerId(1), ctx.now), 0);
  ctx.now = 100.0;  // back at assignment time the hints are live again
  EXPECT_EQ(engine.pending_assignments(PeerId(1), ctx.now), 2);

  // A zero hold disables the mechanism entirely.
  EconConfig no_hold;
  no_hold.enabled = true;
  no_hold.assignment_hold = 0.0;
  EconEngine off(no_hold);
  off.note_assignment(PeerId(1), 100.0);
  EXPECT_EQ(off.pending_assignments(PeerId(1), 100.0), 0);
}

TEST(EconEngine, EmptyRankingCountsAsExhausted) {
  EconEngine engine(EconConfig{.enabled = true});
  std::vector<PeerSnapshot> candidates;
  std::vector<PeerId> ranking;
  SelectionContext ctx;
  ctx.budget = 1.0;
  const auto verdict = engine.admit_and_rank(candidates, ctx, ranking);
  EXPECT_TRUE(verdict.exhausted);
  EXPECT_TRUE(ranking.empty());
}

TEST(EconEngine, MetricsMirrorCounters) {
  obs::MetricRegistry registry;
  EconEngine engine(EconConfig{.enabled = true});
  engine.attach_metrics(registry);
  std::vector<PeerSnapshot> candidates{peer(1), peer(2)};
  auto ctx = transfer_ctx();
  ctx.budget = 1e9;
  std::vector<PeerId> ranking{PeerId(1), PeerId(2)};
  engine.admit_and_rank(candidates, ctx, ranking);
  EXPECT_EQ(registry.counter("econ.petitions", "petitions").value(), 1.0);
  EXPECT_EQ(registry.counter("econ.admitted", "candidates").value(), 2.0);
  EXPECT_EQ(registry.counter("econ.rejected", "candidates").value(), 0.0);
  EXPECT_EQ(registry.find_histogram("econ.quoted_cost")->count(), 1u);
}

// ---- Ledger ------------------------------------------------------------

TEST(Ledger, CountsMissesAndViolations) {
  Ledger ledger;
  // On time, on budget.
  ledger.record({/*deadline=*/100.0, /*budget=*/10.0, /*finished=*/50.0, /*cost=*/5.0,
                 /*completed=*/true});
  // Late.
  ledger.record({100.0, 10.0, 150.0, 5.0, true});
  // Over budget but on time.
  ledger.record({100.0, 10.0, 50.0, 25.0, true});
  // Incomplete with a deadline: a miss by definition.
  ledger.record({100.0, 10.0, 0.0, 0.0, false});
  // Unconstrained job: counts toward neither rate.
  ledger.record({0.0, 0.0, 500.0, 99.0, true});

  EXPECT_EQ(ledger.jobs(), 5u);
  EXPECT_EQ(ledger.completions(), 4u);
  EXPECT_EQ(ledger.deadline_jobs(), 4u);
  EXPECT_EQ(ledger.deadline_misses(), 2u);
  EXPECT_EQ(ledger.budget_jobs(), 4u);
  EXPECT_EQ(ledger.budget_violations(), 1u);
  EXPECT_DOUBLE_EQ(ledger.deadline_miss_rate(), 0.5);
  EXPECT_DOUBLE_EQ(ledger.budget_violation_rate(), 0.25);
  EXPECT_DOUBLE_EQ(ledger.completion_rate(), 0.8);
  EXPECT_DOUBLE_EQ(ledger.total_cost(), 134.0);
  EXPECT_DOUBLE_EQ(ledger.mean_cost(), 134.0 / 5.0);
}

TEST(Ledger, ExactlyOnDeadlineAndBudgetIsNotAMiss) {
  Ledger ledger;
  ledger.record({100.0, 10.0, 100.0, 10.0, true});
  EXPECT_EQ(ledger.deadline_misses(), 0u);
  EXPECT_EQ(ledger.budget_violations(), 0u);
}

TEST(Ledger, EmptyRatesAreZero) {
  const Ledger ledger;
  EXPECT_DOUBLE_EQ(ledger.deadline_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.budget_violation_rate(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.completion_rate(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.mean_cost(), 0.0);
}

TEST(Ledger, MergeFoldsEveryCounter) {
  Ledger a;
  a.record({100.0, 10.0, 150.0, 25.0, true});  // miss + violation
  Ledger b;
  b.record({100.0, 10.0, 50.0, 5.0, true});
  b.merge(a);
  EXPECT_EQ(b.jobs(), 2u);
  EXPECT_EQ(b.deadline_misses(), 1u);
  EXPECT_EQ(b.budget_violations(), 1u);
  EXPECT_DOUBLE_EQ(b.total_cost(), 30.0);
}

// ---- names -------------------------------------------------------------

TEST(EconObjectiveNames, AreStable) {
  EXPECT_STREQ(to_string(EconObjective::kBrokerDefault), "broker-default");
  EXPECT_STREQ(to_string(EconObjective::kCostOptimise), "cost-optimise");
  EXPECT_STREQ(to_string(EconObjective::kTimeOptimise), "time-optimise");
  EXPECT_STREQ(to_string(EconObjective::kCostTime), "cost-time");
  EXPECT_STREQ(to_string(EconObjective::kEfficiency), "efficiency");
}

}  // namespace
}  // namespace peerlab::econ
