#include "peerlab/stats/peer_statistics.hpp"

#include <gtest/gtest.h>

namespace peerlab::stats {
namespace {

TEST(Criterion, NamesAreUniqueAndComplete) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kCriterionCount; ++i) {
    const std::string name = to_string(static_cast<Criterion>(i));
    EXPECT_NE(name, "?");
    EXPECT_TRUE(names.insert(name).second);
  }
  EXPECT_EQ(names.size(), kCriterionCount);
}

TEST(Criterion, DirectionsMatchSemantics) {
  EXPECT_TRUE(higher_is_better(Criterion::kMsgSuccessTotal));
  EXPECT_TRUE(higher_is_better(Criterion::kTaskExecSuccessSession));
  EXPECT_TRUE(higher_is_better(Criterion::kFileSentTotal));
  EXPECT_FALSE(higher_is_better(Criterion::kOutboxNow));
  EXPECT_FALSE(higher_is_better(Criterion::kInboxAvg));
  EXPECT_FALSE(higher_is_better(Criterion::kFileCancelTotal));
  EXPECT_FALSE(higher_is_better(Criterion::kPendingTransfers));
}

TEST(PeerStatistics, FreshPeerIsNeutral) {
  PeerStatistics s;
  EXPECT_DOUBLE_EQ(s.value(Criterion::kMsgSuccessSession, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kMsgSuccessTotal, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kTaskExecSuccessTotal, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kFileCancelTotal, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kOutboxNow, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kPendingTransfers, 0.0), 0.0);
}

TEST(PeerStatistics, MessageCriteriaAcrossScopes) {
  PeerStatistics s;
  s.record_message(10.0, true);
  s.record_message(20.0, false);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kMsgSuccessSession, 20.0), 50.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kMsgSuccessTotal, 20.0), 50.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kMsgSuccessWindow, 20.0), 50.0);
}

TEST(PeerStatistics, SessionResetPreservesTotalsAndWindow) {
  PeerStatistics s;
  s.record_message(10.0, false);
  s.record_task_accept(false);
  s.record_task_execution(false);
  s.record_file(FileOutcome::kCancelled);
  s.begin_session();
  // Session counters are neutral again...
  EXPECT_DOUBLE_EQ(s.value(Criterion::kMsgSuccessSession, 20.0), 100.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kTaskAcceptSession, 20.0), 100.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kFileCancelSession, 20.0), 0.0);
  // ...totals remember.
  EXPECT_DOUBLE_EQ(s.value(Criterion::kMsgSuccessTotal, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kTaskAcceptTotal, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kFileCancelTotal, 20.0), 100.0);
  // ...and the k-hour window remembers too.
  EXPECT_DOUBLE_EQ(s.value(Criterion::kMsgSuccessWindow, 20.0), 0.0);
}

TEST(PeerStatistics, WindowedMessageCriterionAgesOut) {
  PeerStatistics s(/*window_span=*/100.0);
  s.record_message(0.0, false);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kMsgSuccessWindow, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kMsgSuccessWindow, 150.0), 100.0);
  // Totals are unaffected by time.
  EXPECT_DOUBLE_EQ(s.value(Criterion::kMsgSuccessTotal, 150.0), 0.0);
}

TEST(PeerStatistics, QueueSamplesTrackNowAndAverage) {
  PeerStatistics s;
  s.sample_outbox(2.0);
  s.sample_outbox(4.0);
  s.sample_inbox(10.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kOutboxNow, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kOutboxAvg, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kInboxNow, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kInboxAvg, 0.0), 10.0);
}

TEST(PeerStatistics, TaskCriteriaSeparateAcceptanceFromExecution) {
  PeerStatistics s;
  s.record_task_accept(true);
  s.record_task_accept(false);
  s.record_task_execution(true);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kTaskAcceptTotal, 0.0), 50.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kTaskExecSuccessTotal, 0.0), 100.0);
}

TEST(PeerStatistics, FileOutcomesSplitCompletedAndCancelled) {
  PeerStatistics s;
  s.record_file(FileOutcome::kCompleted);
  s.record_file(FileOutcome::kCompleted);
  s.record_file(FileOutcome::kCancelled);
  s.record_file(FileOutcome::kFailed);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kFileSentTotal, 0.0), 50.0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kFileCancelTotal, 0.0), 25.0);
}

TEST(PeerStatistics, PendingTransfersIsInstantaneous) {
  PeerStatistics s;
  s.set_pending_transfers(3);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kPendingTransfers, 0.0), 3.0);
  s.set_pending_transfers(0);
  EXPECT_DOUBLE_EQ(s.value(Criterion::kPendingTransfers, 0.0), 0.0);
}

}  // namespace
}  // namespace peerlab::stats
