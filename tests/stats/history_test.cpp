#include "peerlab/stats/history.hpp"

#include <gtest/gtest.h>

#include "peerlab/common/check.hpp"

namespace peerlab::stats {
namespace {

TaskRecord task(PeerId peer, Seconds started, Seconds exec, bool ok, GigaCycles work = 60.0) {
  TaskRecord r;
  r.task = TaskId(1);
  r.peer = peer;
  r.submitted = started - 1.0;
  r.started = started;
  r.finished = started + exec;
  r.ok = ok;
  r.work = work;
  return r;
}

TransferRecord transfer(PeerId peer, Bytes size, Seconds duration, bool ok) {
  TransferRecord r;
  r.transfer = TransferId(1);
  r.peer = peer;
  r.size = size;
  r.duration = duration;
  r.ok = ok;
  return r;
}

TEST(HistoryStore, EmptyEstimatorsReturnNothing) {
  HistoryStore h;
  EXPECT_FALSE(h.mean_execution_time(PeerId(1)).has_value());
  EXPECT_FALSE(h.mean_effective_speed(PeerId(1)).has_value());
  EXPECT_FALSE(h.mean_transfer_rate(PeerId(1)).has_value());
  EXPECT_FALSE(h.mean_response_time(PeerId(1)).has_value());
  EXPECT_DOUBLE_EQ(h.task_success_rate(PeerId(1)), 1.0);
  EXPECT_TRUE(h.known_peers().empty());
}

TEST(HistoryStore, MeanExecutionTimeUsesSuccessfulTasksOnly) {
  HistoryStore h;
  h.record_task(task(PeerId(1), 10.0, 4.0, true));
  h.record_task(task(PeerId(1), 20.0, 6.0, true));
  h.record_task(task(PeerId(1), 30.0, 100.0, false));  // failure ignored
  ASSERT_TRUE(h.mean_execution_time(PeerId(1)).has_value());
  EXPECT_DOUBLE_EQ(*h.mean_execution_time(PeerId(1)), 5.0);
}

TEST(HistoryStore, MeanExecutionTimeHonoursDepth) {
  HistoryStore h;
  for (int i = 0; i < 10; ++i) {
    h.record_task(task(PeerId(1), i * 100.0, 10.0, true));
  }
  for (int i = 10; i < 14; ++i) {
    h.record_task(task(PeerId(1), i * 100.0, 2.0, true));
  }
  // Depth 4 sees only the recent fast tasks.
  EXPECT_DOUBLE_EQ(*h.mean_execution_time(PeerId(1), 4), 2.0);
  // Depth 14 mixes both.
  EXPECT_NEAR(*h.mean_execution_time(PeerId(1), 14), (10.0 * 10 + 2.0 * 4) / 14.0, 1e-9);
}

TEST(HistoryStore, EffectiveSpeedIsWorkOverTime) {
  HistoryStore h;
  h.record_task(task(PeerId(1), 0.0, 30.0, true, /*work=*/60.0));  // 2 GHz effective
  ASSERT_TRUE(h.mean_effective_speed(PeerId(1)).has_value());
  EXPECT_DOUBLE_EQ(*h.mean_effective_speed(PeerId(1)), 2.0);
}

TEST(HistoryStore, TransferRateFromRecords) {
  HistoryStore h;
  // 1 MB in 1 s = 8 Mbit/s.
  h.record_transfer(transfer(PeerId(2), megabytes(1.0), 1.0, true));
  h.record_transfer(transfer(PeerId(2), megabytes(1.0), 4.0, true));  // 2 Mbit/s
  h.record_transfer(transfer(PeerId(2), megabytes(9.0), 1.0, false));  // ignored
  ASSERT_TRUE(h.mean_transfer_rate(PeerId(2)).has_value());
  EXPECT_DOUBLE_EQ(*h.mean_transfer_rate(PeerId(2)), 5.0);
}

TEST(HistoryStore, ResponseTimesAverage) {
  HistoryStore h;
  h.record_response_time(PeerId(3), 0.1);
  h.record_response_time(PeerId(3), 0.3);
  ASSERT_TRUE(h.mean_response_time(PeerId(3)).has_value());
  EXPECT_DOUBLE_EQ(*h.mean_response_time(PeerId(3)), 0.2);
}

TEST(HistoryStore, SuccessRateCountsFailures) {
  HistoryStore h;
  h.record_task(task(PeerId(1), 0.0, 1.0, true));
  h.record_task(task(PeerId(1), 10.0, 1.0, false));
  h.record_task(task(PeerId(1), 20.0, 1.0, false));
  h.record_task(task(PeerId(1), 30.0, 1.0, true));
  EXPECT_DOUBLE_EQ(h.task_success_rate(PeerId(1)), 0.5);
}

TEST(HistoryStore, CapacityEvictsOldestRecords) {
  HistoryStore h(/*per_peer_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    h.record_task(task(PeerId(1), i * 100.0, static_cast<double>(i + 1), true));
  }
  EXPECT_EQ(h.task_count(PeerId(1)), 4u);
  // Only executions 7..10 remain.
  EXPECT_DOUBLE_EQ(*h.mean_execution_time(PeerId(1), 100), (7.0 + 8.0 + 9.0 + 10.0) / 4.0);
}

TEST(HistoryStore, PeersAreIsolated) {
  HistoryStore h;
  h.record_task(task(PeerId(1), 0.0, 2.0, true));
  h.record_task(task(PeerId(2), 0.0, 20.0, true));
  EXPECT_DOUBLE_EQ(*h.mean_execution_time(PeerId(1)), 2.0);
  EXPECT_DOUBLE_EQ(*h.mean_execution_time(PeerId(2)), 20.0);
}

TEST(HistoryStore, KnownPeersSpansAllRecordKinds) {
  HistoryStore h;
  h.record_task(task(PeerId(3), 0.0, 1.0, true));
  h.record_transfer(transfer(PeerId(1), megabytes(1.0), 1.0, true));
  h.record_response_time(PeerId(2), 0.5);
  const auto peers = h.known_peers();
  ASSERT_EQ(peers.size(), 3u);
  EXPECT_EQ(peers[0], PeerId(1));
  EXPECT_EQ(peers[1], PeerId(2));
  EXPECT_EQ(peers[2], PeerId(3));
}

TEST(HistoryStore, RejectsMalformedRecords) {
  HistoryStore h;
  TaskRecord bad = task(PeerId(1), 10.0, 5.0, true);
  bad.peer = PeerId{};
  EXPECT_THROW(h.record_task(bad), InvariantError);
  TaskRecord backwards = task(PeerId(1), 10.0, -5.0, true);
  EXPECT_THROW(h.record_task(backwards), InvariantError);
  EXPECT_THROW(h.record_response_time(PeerId(1), -1.0), InvariantError);
  EXPECT_THROW(HistoryStore(0), InvariantError);
}

TEST(TransferRecordStruct, AchievedRateMatchesUnits) {
  const auto r = transfer(PeerId(1), megabytes(1.0), 2.0, true);
  EXPECT_DOUBLE_EQ(r.achieved_rate(), 4.0);  // 8 Mbit / 2 s
}

}  // namespace
}  // namespace peerlab::stats
