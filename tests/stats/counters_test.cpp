#include "peerlab/stats/counters.hpp"

#include <gtest/gtest.h>

namespace peerlab::stats {
namespace {

TEST(RatioCounter, EmptyReportsNeutralValue) {
  RatioCounter c;
  EXPECT_DOUBLE_EQ(c.percent(), 100.0);
  EXPECT_DOUBLE_EQ(c.percent(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.percent(50.0), 50.0);
  EXPECT_EQ(c.total(), 0u);
}

TEST(RatioCounter, TracksSuccessPercentage) {
  RatioCounter c;
  c.record(true);
  c.record(true);
  c.record(false);
  c.record(true);
  EXPECT_EQ(c.total(), 4u);
  EXPECT_EQ(c.successes(), 3u);
  EXPECT_DOUBLE_EQ(c.percent(), 75.0);
}

TEST(RatioCounter, AllFailuresIsZeroPercent) {
  RatioCounter c;
  for (int i = 0; i < 10; ++i) c.record(false);
  EXPECT_DOUBLE_EQ(c.percent(), 0.0);
}

TEST(RatioCounter, ResetRestoresNeutrality) {
  RatioCounter c;
  c.record(false);
  c.reset();
  EXPECT_DOUBLE_EQ(c.percent(), 100.0);
  EXPECT_EQ(c.total(), 0u);
}

TEST(SampledAverage, TracksLastAndMean) {
  SampledAverage a;
  a.sample(2.0);
  a.sample(4.0);
  a.sample(6.0);
  EXPECT_DOUBLE_EQ(a.last(), 6.0);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_EQ(a.count(), 3u);
}

TEST(SampledAverage, EmptyIsZero) {
  SampledAverage a;
  EXPECT_DOUBLE_EQ(a.last(), 0.0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(SampledAverage, ResetClearsState) {
  SampledAverage a;
  a.sample(9.0);
  a.reset();
  EXPECT_DOUBLE_EQ(a.last(), 0.0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.count(), 0u);
}

TEST(SampledAverage, LongStreamMeanIsStable) {
  SampledAverage a;
  for (int i = 1; i <= 1000; ++i) a.sample(static_cast<double>(i % 10));
  EXPECT_NEAR(a.mean(), 4.5, 0.01);
}

}  // namespace
}  // namespace peerlab::stats
