#include "peerlab/stats/window.hpp"

#include <gtest/gtest.h>

#include "peerlab/common/check.hpp"

namespace peerlab::stats {
namespace {

TEST(OutcomeWindow, EmptyReportsNeutral) {
  OutcomeWindow w(3600.0);
  EXPECT_DOUBLE_EQ(w.percent(0.0), 100.0);
  EXPECT_DOUBLE_EQ(w.percent(0.0, 42.0), 42.0);
  EXPECT_EQ(w.count(0.0), 0u);
}

TEST(OutcomeWindow, CountsRecentOutcomes) {
  OutcomeWindow w(100.0);
  w.record(10.0, true);
  w.record(20.0, false);
  w.record(30.0, true);
  EXPECT_EQ(w.count(30.0), 3u);
  EXPECT_NEAR(w.percent(30.0), 100.0 * 2 / 3, 1e-9);
}

TEST(OutcomeWindow, OldEventsFallOut) {
  OutcomeWindow w(100.0);
  w.record(0.0, false);
  w.record(50.0, true);
  // At t = 120, the failure at t = 0 has aged out.
  EXPECT_EQ(w.count(120.0), 1u);
  EXPECT_DOUBLE_EQ(w.percent(120.0), 100.0);
  // At t = 200 everything is gone -> neutral again.
  EXPECT_DOUBLE_EQ(w.percent(200.0), 100.0);
}

TEST(OutcomeWindow, BoundaryIsExclusiveAtSpanAge) {
  OutcomeWindow w(100.0);
  w.record(0.0, true);
  EXPECT_EQ(w.count(99.999), 1u);
  EXPECT_EQ(w.count(100.0), 0u);  // exactly span-old events evict
}

TEST(OutcomeWindow, RejectsOutOfOrderRecords) {
  OutcomeWindow w(100.0);
  w.record(50.0, true);
  EXPECT_THROW(w.record(40.0, true), InvariantError);
}

TEST(OutcomeWindow, RejectsNonPositiveSpan) {
  EXPECT_THROW(OutcomeWindow(0.0), InvariantError);
  EXPECT_THROW(OutcomeWindow(-1.0), InvariantError);
}

TEST(OutcomeWindow, PercentIsStableUnderManyEvents) {
  OutcomeWindow w(1000.0);
  for (int i = 0; i < 5000; ++i) {
    w.record(static_cast<double>(i), i % 4 != 0);  // 75% success
  }
  EXPECT_NEAR(w.percent(4999.0), 75.0, 1.0);
  // Window only holds the last 1000 seconds' events.
  EXPECT_EQ(w.count(4999.0), 1000u);
}

}  // namespace
}  // namespace peerlab::stats
