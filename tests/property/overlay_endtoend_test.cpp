// End-to-end property sweeps over the whole deployment: randomized
// workloads against the paper's testbed must always drain, every
// submission must resolve exactly once, and the broker's books must
// balance with what actually happened.

#include <gtest/gtest.h>

#include "peerlab/core/blind.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/planetlab/deployment.hpp"

namespace peerlab::overlay {
namespace {

struct Workload {
  std::uint64_t seed;
  int transfers;
  int tasks;
  int model;  // 0 blind, 1 economic, 2 data evaluator
  double datagram_loss;
};

class EndToEndTest : public ::testing::TestWithParam<Workload> {};

TEST_P(EndToEndTest, EverySubmissionResolvesExactlyOnceAndBooksBalance) {
  const auto w = GetParam();
  sim::Simulator sim(w.seed);
  planetlab::DeploymentOptions opts;
  opts.network.datagram_loss = w.datagram_loss;
  planetlab::Deployment dep(sim, opts);
  dep.boot();
  switch (w.model) {
    case 1:
      dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
      break;
    case 2:
      dep.broker().set_selection_model(std::make_unique<core::DataEvaluatorModel>(
          core::DataEvaluatorModel::same_priority()));
      break;
    default:
      break;
  }
  Primitives api(dep.control());
  sim::Rng rng(w.seed * 13 + 7);

  int transfer_callbacks = 0, transfers_ok = 0;
  for (int i = 0; i < w.transfers; ++i) {
    const int sc = 1 + static_cast<int>(rng.uniform_int(0, 7));
    const double mb = rng.uniform(0.5, 20.0);
    const int parts = static_cast<int>(rng.uniform_int(1, 8));
    sim.schedule(rng.uniform(0.0, 2000.0), [&, sc, mb, parts] {
      api.send_file(dep.sc_peer(sc), megabytes(mb), parts,
                    [&](const transport::TransferResult& r) {
                      ++transfer_callbacks;
                      transfers_ok += r.complete ? 1 : 0;
                    });
    });
  }

  int task_callbacks = 0, tasks_ok = 0;
  for (int i = 0; i < w.tasks; ++i) {
    const double work = rng.uniform(10.0, 120.0);
    const double input = rng.bernoulli(0.5) ? rng.uniform(1.0, 10.0) : 0.0;
    sim.schedule(rng.uniform(0.0, 2000.0), [&, work, input] {
      api.submit_task_auto(work, megabytes(input), [&](const TaskOutcome& o) {
        ++task_callbacks;
        tasks_ok += (o.accepted && o.ok) ? 1 : 0;
      });
    });
  }

  sim.run();  // must drain

  // Exactly-once resolution.
  EXPECT_EQ(transfer_callbacks, w.transfers);
  EXPECT_EQ(task_callbacks, w.tasks);
  // On a clean network everything succeeds; lossy networks may drop
  // some work but most retries pull through.
  if (w.datagram_loss == 0.0) {
    EXPECT_EQ(transfers_ok, w.transfers);
    EXPECT_EQ(tasks_ok, w.tasks);
  } else {
    EXPECT_GE(transfers_ok, w.transfers * 3 / 4);
  }

  // Broker bookkeeping is consistent with reality: completed tasks in
  // its history equal the successful executions across peers.
  std::size_t history_tasks = 0;
  std::uint64_t executor_completions = 0;
  for (std::size_t c = 0; c < dep.client_count(); ++c) {
    history_tasks += dep.broker().history().task_count(dep.client(c).id());
    executor_completions +=
        dep.client(c).executor().completed() + dep.client(c).executor().failed();
  }
  if (w.datagram_loss == 0.0) {
    EXPECT_EQ(history_tasks, executor_completions);
  } else {
    EXPECT_LE(history_tasks, executor_completions);  // reports may be lost
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, EndToEndTest,
    ::testing::Values(Workload{1, 6, 6, 0, 0.0}, Workload{2, 10, 4, 1, 0.0},
                      Workload{3, 4, 10, 2, 0.0}, Workload{4, 8, 8, 1, 0.1},
                      Workload{5, 12, 0, 0, 0.0}, Workload{6, 0, 12, 1, 0.0},
                      Workload{7, 6, 6, 2, 0.2}, Workload{8, 10, 10, 1, 0.0}),
    [](const ::testing::TestParamInfo<Workload>& info) {
      const auto& w = info.param;
      return "s" + std::to_string(w.seed) + "_x" + std::to_string(w.transfers) + "_t" +
             std::to_string(w.tasks) + "_m" + std::to_string(w.model) + "_l" +
             std::to_string(static_cast<int>(w.datagram_loss * 100));
    });

class DeploymentDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeploymentDeterminismTest, FullWorkloadReplaysExactly) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    planetlab::Deployment dep(sim);
    dep.boot();
    dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
    Primitives api(dep.control());
    std::vector<double> completions;
    for (int i = 0; i < 6; ++i) {
      api.submit_task_auto(50.0 + i * 10.0, megabytes(2.0),
                           [&](const TaskOutcome& o) { completions.push_back(o.completed); });
    }
    sim.run();
    return std::make_pair(completions, sim.now());
  };
  const auto a = run(GetParam());
  const auto b = run(GetParam());
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeploymentDeterminismTest,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace peerlab::overlay
