// Adversarial distribution properties: scatter a file over a testbed
// where a seeded mix of leeches (refuse + fabricate praise), flappers
// (accept-then-abort) and honest churn is active, with the broker's
// defenses off and on. Whatever the hostile mix, the run must resolve
// (no hangs), fire its completion callback exactly once, keep the
// share bookkeeping attributed and byte-exact, and replay bit-for-bit
// from the same seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "peerlab/adversary/behavior_plan.hpp"
#include "peerlab/common/check.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/net/fault_plan.hpp"
#include "peerlab/planetlab/deployment.hpp"

namespace peerlab::overlay {
namespace {

struct HostilePlan {
  std::uint64_t seed;
  int leeches;    // compound free-rider + stats-liar adversaries
  int flappers;   // accept-then-abort adversaries
  bool churn;     // one honest peer also crashes mid-run (and returns)
  bool defended;  // broker reputation defenses
};

std::string plan_name(const ::testing::TestParamInfo<HostilePlan>& info) {
  const auto& p = info.param;
  return "s" + std::to_string(p.seed) + "_l" + std::to_string(p.leeches) + "_f" +
         std::to_string(p.flappers) + (p.churn ? "_churn" : "") +
         (p.defended ? "_def" : "_off");
}

struct HostileOutcome {
  FileService::DistributionResult result;
  Seconds resolved_at = 0.0;
  int callbacks = 0;
  std::uint64_t refusals = 0;
  std::uint64_t aborts = 0;
  std::uint64_t lies = 0;
  PeerId control;
};

HostileOutcome run_hostile(const HostilePlan& plan) {
  sim::Simulator sim(plan.seed);
  planetlab::DeploymentOptions opts;
  opts.client.heartbeat_interval = 10.0;
  if (plan.defended) {
    opts.broker.reputation.enabled = true;
    opts.broker.reputation.quarantine_duration = 600.0;
  }
  planetlab::Deployment dep(sim, opts);

  // Adversaries drawn from a seeded shuffle of SC1..SC8; the last pool
  // entry stays honest and doubles as the churn victim so the two fault
  // populations never overlap.
  std::vector<PeerId> pool;
  for (int i = 1; i <= 8; ++i) pool.push_back(dep.sc_peer(i));
  sim::Rng pick = sim.rng().fork(0xADull);
  pick.shuffle(pool);
  PEERLAB_CHECK(plan.leeches + plan.flappers < 8);
  adversary::BehaviorPlan hostile;
  std::size_t next = 0;
  for (int i = 0; i < plan.leeches; ++i, ++next) {
    hostile.free_rider(pool[next]);
    hostile.stats_liar(pool[next]);
  }
  for (int i = 0; i < plan.flappers; ++i, ++next) hostile.flapper(pool[next], 1);
  dep.install_adversaries(std::move(hostile));
  dep.boot();
  dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>());

  if (plan.churn) {
    net::FaultPlan faults;
    faults.crash(sim.now() + 15.0, node_of(pool.back()), 120.0);
    dep.install_faults(std::move(faults));
  }

  transport::FileTransferConfig cfg;
  cfg.petition_retry.initial_timeout = 5.0;
  cfg.petition_retry.backoff = 1.5;
  cfg.petition_retry.max_attempts = 3;
  cfg.confirm_timeout = 15.0;
  cfg.max_confirm_queries = 3;
  cfg.max_part_attempts = 3;

  DistributionOptions dopts;
  dopts.max_failovers_per_share = 4;
  dopts.backoff_initial = 5.0;
  dopts.backoff_factor = 2.0;
  dopts.backoff_cap = 60.0;

  core::SelectionContext ctx;
  ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
  ctx.now = sim.now();
  const auto targets = dep.broker().select_peers(ctx, 3);
  PEERLAB_CHECK_MSG(!targets.empty(), "selection offered nobody");

  HostileOutcome out;
  dep.control().files().distribute(megabytes(12.0), 6, targets, cfg,
                                   [&](const FileService::DistributionResult& r) {
                                     out.result = r;
                                     out.resolved_at = sim.now();
                                     ++out.callbacks;
                                   },
                                   dopts);
  sim.run();

  out.control = dep.control().id();
  out.refusals = dep.adversaries()->refusals_decided();
  out.aborts = dep.adversaries()->aborts_decided();
  out.lies = dep.broker().reputation().lies_recorded();
  return out;
}

class AdversarialDistributionTest : public ::testing::TestWithParam<HostilePlan> {};

TEST_P(AdversarialDistributionTest, ResolvesWithAttributedBookkeeping) {
  const HostilePlan plan = GetParam();
  const HostileOutcome out = run_hostile(plan);

  // No hang, no double-completion: sim.run() returned and the
  // distribution callback fired exactly once.
  ASSERT_EQ(out.callbacks, 1);
  const auto& result = out.result;

  // Byte-exact bookkeeping: every part of the file is accounted to a
  // share, every share to a real SC peer (never the control sender).
  Bytes total = 0;
  int parts = 0;
  int incomplete = 0;
  int share_failovers = 0;
  for (const auto& share : result.shares) {
    total += share.bytes;
    parts += share.parts;
    share_failovers += share.failovers;
    incomplete += share.complete ? 0 : 1;
    EXPECT_TRUE(share.peer.valid());
    EXPECT_TRUE(share.original.valid());
    EXPECT_NE(share.peer, out.control);
    EXPECT_LE(share.failovers, 4);
    if (share.failovers == 0) {
      EXPECT_EQ(share.peer, share.original);
    }
  }
  EXPECT_EQ(total, megabytes(12.0));
  EXPECT_EQ(parts, 6);
  EXPECT_EQ(result.complete, incomplete == 0);
  EXPECT_EQ(result.failovers, share_failovers);
  EXPECT_GE(result.finished, result.started);

  // Attributed adversarial acts: a hostile mix that touched the run
  // shows up in the engine's decision counters, and a defended broker
  // catches the liars' heartbeat praise.
  if (plan.defended && plan.leeches > 0) {
    EXPECT_GT(out.lies, 0u);
  }
  if (!plan.defended) {
    EXPECT_EQ(out.lies, 0u);  // book never consulted nor fed
  }
}

TEST_P(AdversarialDistributionTest, ReplaysBitForBitFromTheSameSeed) {
  const HostilePlan plan = GetParam();
  const HostileOutcome a = run_hostile(plan);
  const HostileOutcome b = run_hostile(plan);
  EXPECT_DOUBLE_EQ(a.resolved_at, b.resolved_at);
  EXPECT_DOUBLE_EQ(a.result.makespan(), b.result.makespan());
  EXPECT_EQ(a.result.complete, b.result.complete);
  EXPECT_EQ(a.result.failovers, b.result.failovers);
  EXPECT_EQ(a.refusals, b.refusals);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.lies, b.lies);
  ASSERT_EQ(a.result.shares.size(), b.result.shares.size());
  for (std::size_t i = 0; i < a.result.shares.size(); ++i) {
    EXPECT_EQ(a.result.shares[i].peer, b.result.shares[i].peer);
    EXPECT_EQ(a.result.shares[i].complete, b.result.shares[i].complete);
    EXPECT_EQ(a.result.shares[i].failovers, b.result.shares[i].failovers);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Plans, AdversarialDistributionTest,
    ::testing::Values(HostilePlan{21, 0, 0, false, false},  // clean control
                      HostilePlan{22, 2, 0, false, false},  // undefended leeches
                      HostilePlan{23, 2, 0, false, true},   // defended leeches
                      HostilePlan{24, 1, 2, true, true},    // mixed + churn, defended
                      HostilePlan{25, 3, 1, true, false},   // heavy mix, undefended
                      HostilePlan{26, 2, 2, false, true}),  // mixed, defended
    plan_name);

}  // namespace
}  // namespace peerlab::overlay
