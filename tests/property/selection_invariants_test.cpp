// Cross-model selection invariants, checked over randomized candidate
// populations:
//   (S1) determinism — same inputs, same ranking;
//   (S2) permutation invariance — candidate order must not matter
//        (stateless models; blind round-robin is exempt by design);
//   (S3) liveness filter — offline peers never appear;
//   (S4) completeness — every online peer appears exactly once;
//   (S5) economic dominance — strictly worsening one peer's load can
//        never move it up the economic ranking;
//   (S6) data-evaluator dominance — strictly improving one criterion
//        can never worsen the peer's cost.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>

#include "peerlab/core/blind.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/user_preference.hpp"
#include "peerlab/sim/rng.hpp"
#include "support/test_seed.hpp"

namespace peerlab::core {
namespace {

struct Population {
  std::deque<stats::PeerStatistics> statistics;
  stats::HistoryStore history;
  std::vector<PeerSnapshot> snapshots;
  std::vector<PeerId> ids;
};

Population random_population(std::uint64_t seed, int n) {
  Population pop;
  sim::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const PeerId peer(static_cast<std::uint64_t>(i + 1));
    auto& s = pop.statistics.emplace_back(3600.0);
    const int events = static_cast<int>(rng.uniform_int(0, 20));
    for (int e = 0; e < events; ++e) {
      s.record_message(static_cast<double>(e), rng.bernoulli(0.8));
      if (rng.bernoulli(0.3)) s.record_task_accept(rng.bernoulli(0.9));
      if (rng.bernoulli(0.3)) s.record_task_execution(rng.bernoulli(0.85));
      if (rng.bernoulli(0.2)) {
        s.record_file(rng.bernoulli(0.8) ? stats::FileOutcome::kCompleted
                                         : stats::FileOutcome::kFailed);
      }
    }
    s.sample_outbox(rng.uniform(0.0, 5.0));
    s.sample_inbox(rng.uniform(0.0, 5.0));
    s.set_pending_transfers(static_cast<int>(rng.uniform_int(0, 4)));
    if (rng.bernoulli(0.7)) {
      stats::TaskRecord record;
      record.task = TaskId(static_cast<std::uint64_t>(i + 1));
      record.peer = peer;
      record.submitted = 0.0;
      record.started = 1.0;
      record.finished = 1.0 + rng.uniform(5.0, 120.0);
      record.ok = true;
      record.work = rng.uniform(10.0, 100.0);
      pop.history.record_task(record);
      pop.history.record_response_time(peer, rng.uniform(0.02, 20.0));
    }

    PeerSnapshot snap;
    snap.peer = peer;
    snap.node = NodeId(static_cast<std::uint64_t>(i + 1));
    snap.cpu_ghz = rng.uniform(0.8, 3.0);
    snap.price_per_cpu_second = rng.uniform(0.5, 3.0);
    snap.online = rng.bernoulli(0.85);
    snap.idle = rng.bernoulli(0.6);
    snap.queued_tasks = static_cast<int>(rng.uniform_int(0, 5));
    snap.active_transfers = static_cast<int>(rng.uniform_int(0, 3));
    snap.statistics = &pop.statistics.back();
    snap.history = &pop.history;
    pop.snapshots.push_back(std::move(snap));
    pop.ids.push_back(peer);
  }
  return pop;
}

SelectionContext random_context(std::uint64_t seed) {
  sim::Rng rng(seed * 3 + 5);
  SelectionContext ctx;
  ctx.now = 100.0;
  ctx.purpose = rng.bernoulli(0.5) ? SelectionContext::Purpose::kTaskExecution
                                   : SelectionContext::Purpose::kFileTransfer;
  ctx.work = rng.uniform(10.0, 200.0);
  ctx.payload_size = megabytes(rng.uniform(1.0, 100.0));
  return ctx;
}

std::vector<std::unique_ptr<SelectionModel>> stateless_models(const Population& pop) {
  std::vector<std::unique_ptr<SelectionModel>> models;
  models.push_back(std::make_unique<EconomicSchedulingModel>());
  models.push_back(std::make_unique<DataEvaluatorModel>(DataEvaluatorModel::same_priority()));
  models.push_back(std::make_unique<UserPreferenceModel>(
      UserPreferenceModel::quick_peer(pop.history, pop.ids)));
  return models;
}

class SelectionInvariantsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectionInvariantsTest, DeterministicAndPermutationInvariant) {
  const auto seed = GetParam();
  auto pop = random_population(seed, 20);
  const auto ctx = random_context(seed);

  for (auto& model : stateless_models(pop)) {
    const auto first = model->rank(pop.snapshots, ctx);
    const auto second = model->rank(pop.snapshots, ctx);
    EXPECT_EQ(first, second) << model->name() << " is nondeterministic";  // (S1)

    auto shuffled = pop.snapshots;
    sim::Rng rng(seed + 1);
    rng.shuffle(shuffled);
    const auto third = model->rank(shuffled, ctx);
    EXPECT_EQ(first, third) << model->name() << " depends on candidate order";  // (S2)
  }
}

TEST_P(SelectionInvariantsTest, RankingsAreExactlyTheOnlinePeers) {
  const auto seed = GetParam();
  auto pop = random_population(seed, 20);
  const auto ctx = random_context(seed);

  std::vector<PeerId> online;
  for (const auto& s : pop.snapshots) {
    if (s.online) online.push_back(s.peer);
  }
  std::sort(online.begin(), online.end());

  for (auto& model : stateless_models(pop)) {
    auto ranking = model->rank(pop.snapshots, ctx);
    // (S3)+(S4): possibly filtered further (economic prefer-idle), but
    // never duplicated, never offline, never unknown.
    auto sorted = ranking;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
        << model->name() << " duplicated a peer";
    for (const auto peer : ranking) {
      EXPECT_TRUE(std::binary_search(online.begin(), online.end(), peer))
          << model->name() << " ranked an offline peer";
    }
  }
  // Data evaluator and user preference rank *all* online peers.
  DataEvaluatorModel evaluator = DataEvaluatorModel::same_priority();
  EXPECT_EQ(evaluator.rank(pop.snapshots, ctx).size(), online.size());
  UserPreferenceModel preference({});
  EXPECT_EQ(preference.rank(pop.snapshots, ctx).size(), online.size());
}

TEST_P(SelectionInvariantsTest, EconomicLoadDominance) {
  const auto seed = GetParam();
  auto pop = random_population(seed, 12);
  auto ctx = random_context(seed);
  ctx.deadline = 0.0;
  ctx.budget = 0.0;
  EconomicConfig cfg;
  cfg.prefer_idle = false;  // keep every candidate comparable
  EconomicSchedulingModel model(cfg);

  const auto before = model.rank(pop.snapshots, ctx);
  if (before.size() < 2) return;
  // Worsen the top peer's load drastically: it must not stay strictly
  // ahead of everyone (S5) — its rank can only degrade or stay equal,
  // never improve.
  const PeerId victim = before.front();
  for (auto& snap : pop.snapshots) {
    if (snap.peer == victim) {
      snap.queued_tasks += 50;
      snap.idle = false;
      snap.active_transfers += 10;
    }
  }
  const auto after = model.rank(pop.snapshots, ctx);
  const auto pos_before =
      std::find(before.begin(), before.end(), victim) - before.begin();
  const auto pos_after = std::find(after.begin(), after.end(), victim) - after.begin();
  EXPECT_GE(pos_after, pos_before) << "more load improved the economic rank";
}

TEST_P(SelectionInvariantsTest, DataEvaluatorCriterionDominance) {
  const auto seed = GetParam();
  sim::Rng rng(seed);
  DataEvaluatorModel model = DataEvaluatorModel::same_priority();
  SelectionContext ctx;
  ctx.now = 50.0;

  // Two peers identical except one extra success for peer A: A's cost
  // must be <= B's. Repeat over several criterion kinds.
  for (int trial = 0; trial < 8; ++trial) {
    stats::PeerStatistics a(3600.0), b(3600.0);
    const int base = static_cast<int>(rng.uniform_int(1, 10));
    for (int i = 0; i < base; ++i) {
      const bool ok = rng.bernoulli(0.5);
      a.record_message(static_cast<double>(i), ok);
      b.record_message(static_cast<double>(i), ok);
    }
    a.record_message(static_cast<double>(base), true);
    b.record_message(static_cast<double>(base), false);

    PeerSnapshot pa, pb;
    pa.peer = PeerId(1);
    pa.statistics = &a;
    pb.peer = PeerId(2);
    pb.statistics = &b;
    EXPECT_LE(model.cost(pa, ctx), model.cost(pb, ctx));
  }
}

// Ten seeds derived from the repo-wide base (PEERLAB_TEST_SEED); the
// failing seed is part of the parameterized test's name, so a red run
// is replayable with PEERLAB_TEST_SEED=<that seed>.
INSTANTIATE_TEST_SUITE_P(Seeds, SelectionInvariantsTest,
                         ::testing::Range(peerlab::testing::test_seed(),
                                          peerlab::testing::test_seed() + 10));

}  // namespace
}  // namespace peerlab::core
