// ReputationBook decay properties: between observations a score only
// moves toward neutral (never past it, never away), a disabled
// half-life freezes it, and quarantine is served in full — no
// interleaved success, failure, or score query lifts it early, and
// expiry re-enters at probation, not full trust.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "peerlab/overlay/reputation.hpp"
#include "support/test_seed.hpp"

namespace peerlab::overlay {
namespace {

constexpr int kScenarios = 100;

stats::TransferRecord make_transfer(std::mt19937_64& rng, PeerId peer, Seconds now) {
  stats::TransferRecord record;
  record.transfer = TransferId(rng() % 512 + 1);
  record.peer = peer;
  record.size = static_cast<Bytes>(rng() % 4096 + 64) * 1024;
  record.duration = 0.5 + 0.1 * static_cast<double>(rng() % 100);
  record.petition_time = now;
  record.ok = (rng() % 4) != 0;
  return record;
}

void observe(ReputationBook& book, std::mt19937_64& rng, PeerId peer, Seconds now) {
  switch (rng() % 4) {
    case 0:
      book.record_success(peer, now);
      break;
    case 1:
      book.record_failure(peer, now);
      break;
    case 2:
      book.record_lie(peer, now);
      break;
    default:
      book.record_transfer(peer, make_transfer(rng, peer, now), now);
      break;
  }
}

// With quarantine disabled (threshold 0 can never trip: scores clamp
// at 0 and the trigger is strict) the projection is pure decay: the
// distance to neutral is non-increasing in time, the score stays in
// [0, 1], and after many half-lives it converges to neutral.
TEST(ReputationDecay, ScoreMovesMonotonicallyTowardNeutral) {
  const std::uint64_t base = peerlab::testing::test_seed();
  const double half_lives[] = {60.0, 600.0, 3600.0};
  for (int scenario = 0; scenario < kScenarios; ++scenario) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(scenario) * 2654435761ull;
    std::mt19937_64 rng(seed);
    ReputationConfig config;
    config.enabled = true;
    config.quarantine_below = 0.0;
    config.decay_half_life = half_lives[rng() % 3];
    ReputationBook book(config);
    const PeerId peer(rng() % 8 + 1);

    Seconds now = 1.0;
    for (int step = 0; step < 30; ++step) {
      observe(book, rng, peer, now);
      // Sample the projection at increasing offsets; the gap to
      // neutral may only shrink.
      Seconds t = now;
      double last_gap = 1.0 - book.score(peer, t);
      ASSERT_GE(last_gap, -1e-12) << "seed=" << seed << " step=" << step;
      for (int sample = 0; sample < 8; ++sample) {
        t += 1.0 + static_cast<double>(rng() % 2000);
        const double score = book.score(peer, t);
        ASSERT_GE(score, 0.0) << "seed=" << seed << " step=" << step;
        ASSERT_LE(score, 1.0) << "seed=" << seed << " step=" << step;
        const double gap = 1.0 - score;
        ASSERT_LE(gap, last_gap + 1e-12)
            << "seed=" << seed << " step=" << step << " t=" << t;
        last_gap = gap;
      }
      ASSERT_NEAR(book.score(peer, now + 50.0 * config.decay_half_life), 1.0, 1e-9)
          << "seed=" << seed << " step=" << step;
      now += 1.0 + static_cast<double>(rng() % 600);
    }
  }
}

TEST(ReputationDecay, ZeroHalfLifeFreezesScoreBetweenObservations) {
  const std::uint64_t seed = peerlab::testing::test_seed();
  std::mt19937_64 rng(seed);
  ReputationConfig config;
  config.enabled = true;
  config.quarantine_below = 0.0;
  config.decay_half_life = 0.0;
  ReputationBook book(config);
  const PeerId peer(7);
  Seconds now = 1.0;
  for (int step = 0; step < 50; ++step) {
    observe(book, rng, peer, now);
    const double here = book.score(peer, now);
    for (int sample = 0; sample < 4; ++sample) {
      const Seconds t = now + 1.0 + static_cast<double>(rng() % 100000);
      ASSERT_EQ(book.score(peer, t), here) << "seed=" << seed << " step=" << step;
    }
    now += 1.0 + static_cast<double>(rng() % 600);
  }
}

// Once quarantine arms, nothing said or done during the term lifts it
// early — not successes, not further failures, not repeated queries —
// and the full term is exactly `quarantine_duration` from the arming
// observation. Expiry re-enters at probation_score, not full trust.
TEST(ReputationDecay, QuarantineServedInFullDespiteInterleavedObservations) {
  const std::uint64_t base = peerlab::testing::test_seed();
  for (int scenario = 0; scenario < kScenarios; ++scenario) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(scenario) * 40503ull + 17;
    std::mt19937_64 rng(seed);
    ReputationConfig config;
    config.enabled = true;
    ReputationBook book(config);
    const PeerId peer(rng() % 8 + 1);

    // Hammer failures until the score crosses the trigger.
    Seconds now = 1.0;
    Seconds armed_at = -1.0;
    for (int i = 0; i < 64 && armed_at < 0.0; ++i) {
      book.record_failure(peer, now);
      if (book.quarantined(peer, now)) armed_at = now;
      now += 0.5 + static_cast<double>(rng() % 20);
    }
    ASSERT_GE(armed_at, 0.0) << "seed=" << seed;
    const Seconds until = armed_at + config.quarantine_duration;

    // Interleave observations and queries strictly inside the term.
    Seconds t = armed_at;
    while (t < until) {
      ASSERT_TRUE(book.quarantined(peer, t)) << "seed=" << seed << " t=" << t;
      switch (rng() % 4) {
        case 0:
          book.record_success(peer, t);
          break;
        case 1:
          book.record_failure(peer, t);
          break;
        case 2:
          (void)book.score(peer, t);
          break;
        default:
          break;  // silence
      }
      ASSERT_TRUE(book.quarantined(peer, t)) << "seed=" << seed << " t=" << t;
      t += 1.0 + static_cast<double>(rng() % 120);
    }

    // The term ends exactly on schedule, and the peer re-enters on
    // probation: no better than earned, no worse than probation_score.
    EXPECT_FALSE(book.quarantined(peer, until)) << "seed=" << seed;
    EXPECT_GE(book.score(peer, until), config.probation_score - 1e-12) << "seed=" << seed;
    EXPECT_EQ(book.quarantines_imposed(), 1u) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace peerlab::overlay
