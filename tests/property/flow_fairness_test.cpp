// Property tests for the fluid max-min bandwidth allocator. For random
// topologies and flow sets we verify the allocation against the
// definition of max-min fairness rather than against hand-computed
// examples:
//   (P1) feasibility — no node capacity is exceeded, no flow exceeds
//        its rate cap, no rate is negative;
//   (P2) saturation — every flow is limited by *something*: its cap or
//        a saturated resource on its path;
//   (P3) max-min — a flow's rate can only be below another's if the
//        smaller flow is pinned by its cap or shares a saturated
//        resource with flows of no larger rate;
//   (P4) work conservation at the single shared bottleneck.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "peerlab/net/flow_scheduler.hpp"

namespace peerlab::net {
namespace {

struct Scenario {
  int nodes;
  int flows;
  std::uint64_t seed;
};

class FlowFairnessTest : public ::testing::TestWithParam<Scenario> {};

constexpr double kEps = 1e-6;

TEST_P(FlowFairnessTest, MaxMinInvariantsHold) {
  const auto param = GetParam();
  sim::Simulator sim(param.seed);
  sim::Rng rng(param.seed * 77 + 1);

  net::Topology topo(sim.rng().fork(1));
  std::vector<NodeId> nodes;
  for (int i = 0; i < param.nodes; ++i) {
    NodeProfile p;
    p.hostname = "n" + std::to_string(i);
    p.uplink_mbps = rng.uniform(2.0, 50.0);
    p.downlink_mbps = rng.uniform(2.0, 50.0);
    nodes.push_back(topo.add_node(p));
  }
  FlowScheduler scheduler(sim, topo);

  struct FlowInfo {
    FlowId id;
    NodeId src, dst;
    double cap;
  };
  std::vector<FlowInfo> flows;
  for (int f = 0; f < param.flows; ++f) {
    const auto src = nodes[static_cast<std::size_t>(
        rng.uniform_int(0, param.nodes - 1))];
    NodeId dst = src;
    while (dst == src) {
      dst = nodes[static_cast<std::size_t>(rng.uniform_int(0, param.nodes - 1))];
    }
    FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size = megabytes(100.0);  // long-lived: rates stay put
    const bool capped = rng.bernoulli(0.4);
    const double cap = capped ? rng.uniform(0.5, 10.0) : 0.0;
    spec.rate_cap = cap;
    spec.on_complete = [](Seconds) {};
    const FlowId id = scheduler.start(std::move(spec));
    flows.push_back(FlowInfo{id, src, dst, cap});
  }

  // Collect rates and per-resource usage.
  std::map<std::uint64_t, double> used;     // resource key -> rate sum
  std::map<std::uint64_t, double> capacity; // resource key -> capacity
  auto up_key = [](NodeId n) { return n.value() * 2; };
  auto down_key = [](NodeId n) { return n.value() * 2 + 1; };
  for (const auto& f : flows) {
    const double rate = scheduler.current_rate(f.id);
    // (P1) non-negative, cap respected.
    ASSERT_GE(rate, 0.0);
    if (f.cap > 0.0) {
      EXPECT_LE(rate, f.cap + kEps);
    }
    used[up_key(f.src)] += rate;
    used[down_key(f.dst)] += rate;
    capacity[up_key(f.src)] = topo.node(f.src).profile().uplink_mbps;
    capacity[down_key(f.dst)] = topo.node(f.dst).profile().downlink_mbps;
  }
  // (P1) feasibility per resource.
  for (const auto& [key, sum] : used) {
    EXPECT_LE(sum, capacity[key] + kEps) << "resource " << key << " oversubscribed";
  }

  auto saturated = [&](std::uint64_t key) {
    return used[key] >= capacity[key] - kEps;
  };

  // (P2) every flow is limited by its cap or by a saturated resource.
  for (const auto& f : flows) {
    const double rate = scheduler.current_rate(f.id);
    const bool at_cap = f.cap > 0.0 && rate >= f.cap - kEps;
    const bool at_bottleneck = saturated(up_key(f.src)) || saturated(down_key(f.dst));
    EXPECT_TRUE(at_cap || at_bottleneck)
        << "flow " << to_string(f.id) << " has slack everywhere (rate " << rate << ")";
  }

  // (P3) bottleneck condition (Bertsekas & Gallager): every flow not
  // pinned by its own cap must have a resource on its path that is
  // saturated and on which no other flow gets a strictly larger rate.
  auto max_rate_on = [&](std::uint64_t key) {
    double best = 0.0;
    for (const auto& f : flows) {
      if (up_key(f.src) == key || down_key(f.dst) == key) {
        best = std::max(best, scheduler.current_rate(f.id));
      }
    }
    return best;
  };
  for (const auto& a : flows) {
    const double ra = scheduler.current_rate(a.id);
    if (a.cap > 0.0 && ra >= a.cap - kEps) continue;  // pinned by cap
    bool has_bottleneck = false;
    for (const std::uint64_t key : {up_key(a.src), down_key(a.dst)}) {
      if (saturated(key) && ra >= max_rate_on(key) - kEps) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck)
        << "max-min violated: " << to_string(a.id) << " (rate " << ra
        << ") has no bottleneck resource where it is among the fastest";
  }
  sim.clear();
}

INSTANTIATE_TEST_SUITE_P(
    RandomScenarios, FlowFairnessTest,
    ::testing::Values(Scenario{2, 2, 11}, Scenario{3, 4, 12}, Scenario{4, 8, 13},
                      Scenario{5, 12, 14}, Scenario{6, 16, 15}, Scenario{8, 24, 16},
                      Scenario{10, 32, 17}, Scenario{12, 48, 18}, Scenario{16, 64, 19},
                      Scenario{4, 20, 20}, Scenario{3, 30, 21}, Scenario{20, 40, 22}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return "n" + std::to_string(info.param.nodes) + "_f" +
             std::to_string(info.param.flows) + "_s" + std::to_string(info.param.seed);
    });

TEST(FlowConservation, SingleBottleneckIsFullyUsed) {
  // 10 flows through one 10 Mbit/s uplink with ample downlinks: rates
  // must sum to exactly the bottleneck capacity.
  sim::Simulator sim(1);
  net::Topology topo(sim.rng().fork(1));
  NodeProfile src;
  src.hostname = "src";
  src.uplink_mbps = 10.0;
  src.downlink_mbps = 10.0;
  const NodeId s = topo.add_node(src);
  std::vector<NodeId> sinks;
  for (int i = 0; i < 10; ++i) {
    NodeProfile p;
    p.hostname = "sink" + std::to_string(i);
    p.uplink_mbps = 100.0;
    p.downlink_mbps = 100.0;
    sinks.push_back(topo.add_node(p));
  }
  FlowScheduler scheduler(sim, topo);
  std::vector<FlowId> ids;
  for (const auto d : sinks) {
    FlowSpec spec;
    spec.src = s;
    spec.dst = d;
    spec.size = megabytes(10.0);
    spec.on_complete = [](Seconds) {};
    ids.push_back(scheduler.start(std::move(spec)));
  }
  double total = 0.0;
  for (const auto id : ids) total += scheduler.current_rate(id);
  EXPECT_NEAR(total, 10.0, 1e-9);
  sim.clear();
}

}  // namespace
}  // namespace peerlab::net
