// Churn properties: under randomized stop/start schedules the overlay
// must keep its books straight — liveness converges to the true peer
// state, selection only offers online peers, and work submitted to the
// survivors still completes.

#include <gtest/gtest.h>

#include <set>

#include "peerlab/core/economic.hpp"
#include "peerlab/planetlab/deployment.hpp"

namespace peerlab::overlay {
namespace {

struct ChurnPlan {
  std::uint64_t seed;
  int crash_count;    // peers taken down mid-run
  bool recover;       // whether they come back
};

class ChurnTest : public ::testing::TestWithParam<ChurnPlan> {};

TEST_P(ChurnTest, LivenessConvergesAndSurvivorsServe) {
  const auto plan = GetParam();
  sim::Simulator sim(plan.seed);
  planetlab::DeploymentOptions opts;
  opts.client.heartbeat_interval = 10.0;
  planetlab::Deployment dep(sim, opts);
  dep.boot();
  dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>());

  // Pick distinct victims deterministically from the seed.
  sim::Rng rng(plan.seed * 7 + 3);
  std::set<int> victims;
  while (static_cast<int>(victims.size()) < plan.crash_count) {
    victims.insert(1 + static_cast<int>(rng.uniform_int(0, 7)));
  }

  sim.schedule(50.0, [&] {
    for (const int v : victims) dep.sc(v).stop();
  });
  if (plan.recover) {
    sim.schedule(600.0, [&] {
      for (const int v : victims) dep.sc(v).start();
    });
  }

  // Phase 1: after the crash settles, liveness matches reality and
  // selection only offers the survivors.
  sim.run_until(250.0);
  for (int i = 1; i <= 8; ++i) {
    EXPECT_EQ(dep.broker().online(dep.sc_peer(i)), victims.count(i) == 0) << "SC" << i;
  }
  core::SelectionContext ctx;
  ctx.now = sim.now();
  const auto offered = dep.broker().select_peers(ctx, 99);
  EXPECT_EQ(offered.size(), 8u - victims.size());
  for (const auto peer : offered) {
    bool is_victim = false;
    for (const int v : victims) is_victim |= (peer == dep.sc_peer(v));
    EXPECT_FALSE(is_victim) << "selection offered a dead peer";
  }

  // Phase 2: work routed through the broker completes on survivors.
  Primitives api(dep.control());
  int done = 0, failed = 0;
  for (int j = 0; j < 6; ++j) {
    api.submit_task_auto(30.0, 0, [&](const TaskOutcome& o) {
      (o.accepted && o.ok ? done : failed)++;
    });
  }
  sim.run();
  EXPECT_EQ(done, 6);
  EXPECT_EQ(failed, 0);

  // Phase 3: recovery restores the full group.
  if (plan.recover) {
    sim.run_until(std::max(sim.now(), 700.0));
    for (int i = 1; i <= 8; ++i) {
      EXPECT_TRUE(dep.broker().online(dep.sc_peer(i))) << "SC" << i << " after recovery";
    }
    EXPECT_EQ(dep.broker().select_peers(ctx, 99).size(), 8u);
  }
}

INSTANTIATE_TEST_SUITE_P(Plans, ChurnTest,
                         ::testing::Values(ChurnPlan{1, 1, true}, ChurnPlan{2, 2, true},
                                           ChurnPlan{3, 3, false}, ChurnPlan{4, 4, true},
                                           ChurnPlan{5, 2, false}, ChurnPlan{6, 5, true}),
                         [](const ::testing::TestParamInfo<ChurnPlan>& info) {
                           return "s" + std::to_string(info.param.seed) + "_c" +
                                  std::to_string(info.param.crash_count) +
                                  (info.param.recover ? "_rec" : "_norec");
                         });

}  // namespace
}  // namespace peerlab::overlay
