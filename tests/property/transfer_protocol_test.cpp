// Property sweeps over the file-transfer protocol: across a grid of
// (file size, granularity, message loss, datagram loss) the protocol
// must either complete with conserved bytes and ordered parts, or fail
// with an explicit reason — and it must never hang (the simulation
// always drains).

#include <gtest/gtest.h>

#include <optional>

#include "peerlab/transport/file_transfer.hpp"

namespace peerlab::transport {
namespace {

struct Grid {
  double size_mb;
  int parts;
  double loss_per_mb;
  double datagram_loss;
  std::uint64_t seed;
};

class TransferGridTest : public ::testing::TestWithParam<Grid> {};

TEST_P(TransferGridTest, CompletesOrFailsExplicitlyAndConservesBytes) {
  const auto p = GetParam();
  sim::Simulator sim(p.seed);
  net::Topology topo(sim.rng().fork(1));
  net::NodeProfile sender;
  sender.hostname = "sender";
  sender.uplink_mbps = 10.0;
  sender.downlink_mbps = 10.0;
  sender.control_delay_mean = 0.02;
  sender.control_delay_sigma = 0.2;
  sender.loss_per_megabyte = 0.0;
  topo.add_node(sender);
  net::NodeProfile receiver = sender;
  receiver.hostname = "receiver";
  receiver.loss_per_megabyte = p.loss_per_mb;
  topo.add_node(receiver);
  net::NetworkConfig cfg;
  cfg.datagram_loss = p.datagram_loss;
  net::Network network(sim, std::move(topo), cfg);
  TransportFabric fabric(network);
  FileTransferDirectory directory;
  FileTransferPeer src(fabric.attach(NodeId(1)), directory);
  FileTransferPeer dst(fabric.attach(NodeId(2)), directory);

  FileTransferConfig ft;
  ft.file_size = megabytes(p.size_mb);
  ft.parts = p.parts;
  ft.petition_retry.initial_timeout = 5.0;
  ft.petition_retry.max_attempts = 10;
  ft.confirm_timeout = 10.0;
  ft.max_confirm_queries = 10;
  ft.max_part_attempts = 30;

  std::optional<TransferResult> result;
  src.send_file(NodeId(2), ft, [&](const TransferResult& r) { result = r; });
  sim.run();  // must drain: no hangs

  ASSERT_TRUE(result.has_value()) << "transfer neither completed nor failed";
  if (result->complete) {
    // Byte conservation: parts partition the file exactly.
    Bytes total = 0;
    int expected_index = 0;
    Seconds prev_end = 0.0;
    for (const auto& part : result->parts) {
      EXPECT_EQ(part.index, expected_index++);
      EXPECT_GT(part.size, 0);
      total += part.size;
      // Strict sequencing: the confirm-before-next-part protocol.
      EXPECT_GE(part.data_started, prev_end);
      EXPECT_GE(part.data_completed, part.data_started);
      EXPECT_GE(part.confirmed, part.data_completed);
      prev_end = part.confirmed;
      EXPECT_GE(part.attempts, 1);
      EXPECT_LE(part.attempts, ft.max_part_attempts);
    }
    EXPECT_EQ(total, ft.file_size);
    EXPECT_EQ(static_cast<int>(result->parts.size()), p.parts);
    EXPECT_EQ(dst.parts_received(), static_cast<std::uint64_t>(p.parts));
    // Timing sanity.
    EXPECT_GE(result->petition_time(), 0.0);
    EXPECT_GT(result->transmission_time(), 0.0);
    EXPECT_GE(result->total_time(), result->transmission_time());
  } else {
    EXPECT_STRNE(result->failure, "");  // explicit reason
  }
  // Either way the sender's bookkeeping is clean.
  EXPECT_EQ(src.active_outgoing(), 0u);
}

std::vector<Grid> grid_cases() {
  std::vector<Grid> cases;
  std::uint64_t seed = 100;
  for (const double size : {0.5, 5.0, 50.0}) {
    for (const int parts : {1, 4, 16}) {
      for (const double loss : {0.0, 0.02}) {
        for (const double dgl : {0.0, 0.2}) {
          cases.push_back(Grid{size, parts, loss, dgl, ++seed});
        }
      }
    }
  }
  // A few hostile corners.
  cases.push_back(Grid{100.0, 1, 0.05, 0.3, 999});
  cases.push_back(Grid{10.0, 100, 0.0, 0.3, 998});
  cases.push_back(Grid{1.0, 16, 0.1, 0.1, 997});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, TransferGridTest, ::testing::ValuesIn(grid_cases()),
                         [](const ::testing::TestParamInfo<Grid>& info) {
                           const auto& g = info.param;
                           return "mb" + std::to_string(static_cast<int>(g.size_mb * 10)) +
                                  "_p" + std::to_string(g.parts) + "_l" +
                                  std::to_string(static_cast<int>(g.loss_per_mb * 100)) +
                                  "_d" + std::to_string(static_cast<int>(g.datagram_loss * 100)) +
                                  "_s" + std::to_string(g.seed);
                         });

class TransferDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransferDeterminismTest, SameSeedSameOutcome) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    net::Topology topo(sim.rng().fork(1));
    for (const char* name : {"a", "b"}) {
      net::NodeProfile p;
      p.hostname = name;
      p.loss_per_megabyte = 0.05;
      p.control_delay_sigma = 0.4;
      topo.add_node(p);
    }
    net::NetworkConfig cfg;
    cfg.datagram_loss = 0.1;
    net::Network network(sim, std::move(topo), cfg);
    TransportFabric fabric(network);
    FileTransferDirectory directory;
    FileTransferPeer src(fabric.attach(NodeId(1)), directory);
    FileTransferPeer dst(fabric.attach(NodeId(2)), directory);
    FileTransferConfig ft;
    ft.file_size = megabytes(8.0);
    ft.parts = 4;
    std::optional<TransferResult> result;
    src.send_file(NodeId(2), ft, [&](const TransferResult& r) { result = r; });
    sim.run();
    return result;
  };
  const auto a = run(GetParam());
  const auto b = run(GetParam());
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->complete, b->complete);
  EXPECT_DOUBLE_EQ(a->finished, b->finished);
  EXPECT_DOUBLE_EQ(a->petition_time(), b->petition_time());
  ASSERT_EQ(a->parts.size(), b->parts.size());
  for (std::size_t i = 0; i < a->parts.size(); ++i) {
    EXPECT_EQ(a->parts[i].attempts, b->parts[i].attempts);
    EXPECT_DOUBLE_EQ(a->parts[i].confirmed, b->parts[i].confirmed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransferDeterminismTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace peerlab::transport
