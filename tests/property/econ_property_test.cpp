// Economic engine properties.
//
// Zero-perturbation: an enabled-but-unconstrained engine, and a
// disabled engine facing constrained petitions, must both leave the
// pristine selection path bit for bit — end-to-end (same-seed
// deployments running a full scatter distribution resolve identically)
// and at the broker decision layer (non-economic models give the same
// answer whether or not the petition carries deadline/budget the
// pristine path is supposed to ignore).
//
// Admission invariants over randomized candidate sets: re-ranking is
// always a permutation, the feasible prefix matches a recomputed
// appraisal of every candidate, exhausted petitions keep the model's
// order untouched, and the whole thing replays deterministically.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "peerlab/common/check.hpp"
#include "peerlab/core/blind.hpp"
#include "peerlab/core/hybrid.hpp"
#include "peerlab/econ/economy.hpp"
#include "peerlab/planetlab/deployment.hpp"
#include "support/test_seed.hpp"

namespace peerlab::econ {
namespace {

using core::EconObjective;
using core::PeerSnapshot;
using core::SelectionContext;

// ---- end-to-end zero perturbation --------------------------------------

struct WorldOutcome {
  Seconds resolved_at = 0.0;
  double makespan = 0.0;
  bool complete = false;
  std::vector<PeerId> share_peers;
};

/// One scatter distribution in a seeded deployment; `engine_on` flips
/// only BrokerConfig::econ.enabled. Petitions stay unconstrained, so
/// both arms must take the identical pristine path.
WorldOutcome run_world(std::uint64_t seed, bool engine_on) {
  sim::Simulator sim(seed);
  planetlab::DeploymentOptions opts;
  opts.broker.econ.enabled = engine_on;
  planetlab::Deployment dep(sim, opts);
  dep.boot();

  SelectionContext ctx;
  ctx.purpose = SelectionContext::Purpose::kFileTransfer;
  ctx.now = sim.now();
  const auto targets = dep.broker().select_peers(ctx, 3);
  PEERLAB_CHECK_MSG(!targets.empty(), "selection offered nobody");

  WorldOutcome out;
  transport::FileTransferConfig cfg;
  dep.control().files().distribute(megabytes(12.0), 6, targets, cfg,
                                   [&](const overlay::FileService::DistributionResult& r) {
                                     out.resolved_at = sim.now();
                                     out.makespan = r.makespan();
                                     out.complete = r.complete;
                                     for (const auto& share : r.shares) {
                                       out.share_peers.push_back(share.peer);
                                     }
                                   });
  sim.run();
  PEERLAB_CHECK_MSG(dep.broker().econ_engine().petitions() == 0,
                    "unconstrained petitions must never reach the engine");
  return out;
}

class EconZeroPerturbationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EconZeroPerturbationTest, EnabledEngineUnconstrainedWorldIsByteIdentical) {
  const std::uint64_t seed = GetParam();
  const WorldOutcome off = run_world(seed, /*engine_on=*/false);
  const WorldOutcome on = run_world(seed, /*engine_on=*/true);
  EXPECT_DOUBLE_EQ(off.resolved_at, on.resolved_at) << "seed=" << seed;
  EXPECT_DOUBLE_EQ(off.makespan, on.makespan) << "seed=" << seed;
  EXPECT_EQ(off.complete, on.complete) << "seed=" << seed;
  EXPECT_EQ(off.share_peers, on.share_peers) << "seed=" << seed;
}

TEST_P(EconZeroPerturbationTest, DisabledEngineIgnoresContractsOnPristineModels) {
  // With the engine off, deadlines/budgets riding the wire must change
  // nothing for models that never read them. Fresh worlds per arm keep
  // stateful cursors (blind rotation) comparable.
  const std::uint64_t seed = GetParam();
  for (const bool hybrid : {false, true}) {
    const auto select = [&](bool constrained) {
      sim::Simulator sim(seed);
      planetlab::Deployment dep(sim);
      dep.boot();
      if (hybrid) {
        dep.broker().set_selection_model(std::make_unique<core::HybridModel>());
      }
      SelectionContext ctx;
      ctx.purpose = SelectionContext::Purpose::kFileTransfer;
      ctx.payload_size = megabytes(4.0);
      ctx.now = sim.now();
      if (constrained) {
        ctx.deadline = sim.now() + 120.0;
        ctx.budget = 40.0;
      }
      return dep.broker().select_peers(ctx, 4);
    };
    EXPECT_EQ(select(false), select(true)) << "seed=" << seed << " hybrid=" << hybrid;
  }
}

// ---- randomized admission invariants -----------------------------------

std::vector<PeerSnapshot> random_candidates(sim::Rng& rng, std::size_t n) {
  std::vector<PeerSnapshot> out;
  for (std::size_t i = 0; i < n; ++i) {
    PeerSnapshot p;
    p.peer = PeerId(i + 1);
    p.node = NodeId(i + 1);
    p.cpu_ghz = rng.uniform(0.3, 3.0);
    p.price_per_cpu_second = rng.uniform(0.1, 5.0);
    p.idle = rng.bernoulli(0.6);
    p.queued_tasks = static_cast<int>(rng.uniform_int(0, 4));
    p.active_transfers = static_cast<int>(rng.uniform_int(0, 3));
    p.reputation = rng.uniform(0.2, 1.0);
    out.push_back(p);
  }
  return out;
}

SelectionContext random_contract(sim::Rng& rng) {
  SelectionContext ctx;
  ctx.now = rng.uniform(0.0, 1000.0);
  ctx.purpose = SelectionContext::Purpose::kFileTransfer;
  ctx.payload_size = static_cast<Bytes>(rng.uniform_int(1, 64)) * kMegabyte;
  if (rng.bernoulli(0.7)) ctx.deadline = ctx.now + rng.uniform(1.0, 600.0);
  if (rng.bernoulli(0.7)) ctx.budget = rng.uniform(0.5, 200.0);
  constexpr EconObjective kObjectives[] = {
      EconObjective::kBrokerDefault, EconObjective::kCostOptimise,
      EconObjective::kTimeOptimise, EconObjective::kCostTime, EconObjective::kEfficiency};
  ctx.objective = kObjectives[rng.uniform_int(0, 4)];
  if (!ctx.econ_constrained()) ctx.budget = 10.0;  // keep the petition constrained
  return ctx;
}

class EconAdmissionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EconAdmissionPropertyTest, AdmissionIsAFeasiblePrefixPermutation) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);
  EconConfig cfg;
  cfg.enabled = true;
  cfg.pricing.reputation_discount = 0.25;
  EconEngine engine(cfg);
  EconEngine replay(cfg);

  for (int round = 0; round < 50; ++round) {
    const auto candidates = random_candidates(rng, 1 + static_cast<std::size_t>(
                                                       rng.uniform_int(0, 15)));
    const auto ctx = random_contract(rng);
    core::BlindModel model;
    std::vector<PeerId> ranking;
    model.rank_into(candidates, ctx, ranking);
    std::vector<PeerId> before = ranking;
    const auto verdict = engine.admit_and_rank(candidates, ctx, ranking);
    const std::string where = "seed=" + std::to_string(seed) +
                              " round=" + std::to_string(round);

    // Permutation: nothing invented, nothing dropped.
    auto sorted_before = before;
    auto sorted_after = ranking;
    std::sort(sorted_before.begin(), sorted_before.end());
    std::sort(sorted_after.begin(), sorted_after.end());
    EXPECT_EQ(sorted_before, sorted_after) << where;

    // Feasible prefix: the first `feasible` entries appraise feasible,
    // the rest infeasible, and the counts add up.
    EXPECT_EQ(verdict.appraised, before.size()) << where;
    EXPECT_LE(verdict.feasible, verdict.appraised) << where;
    EXPECT_EQ(verdict.exhausted, verdict.feasible == 0 || before.empty()) << where;
    for (std::size_t i = 0; i < ranking.size(); ++i) {
      const auto& snap = candidates[ranking[i].value() - 1];
      const bool want_feasible = !verdict.exhausted && i < verdict.feasible;
      if (verdict.exhausted) {
        EXPECT_FALSE(engine.appraise(snap, ctx).feasible()) << where << " rank=" << i;
      } else {
        EXPECT_EQ(engine.appraise(snap, ctx).feasible(), want_feasible)
            << where << " rank=" << i;
      }
    }

    // Exhausted petitions keep the model's order untouched.
    if (verdict.exhausted) {
      EXPECT_EQ(ranking, before) << where;
    }

    // Deterministic replay: an identical engine makes identical calls.
    std::vector<PeerId> ranking2 = before;
    (void)replay.admit_and_rank(candidates, ctx, ranking2);
    EXPECT_EQ(ranking, ranking2) << where;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EconZeroPerturbationTest,
                         ::testing::Range(peerlab::testing::test_seed(),
                                          peerlab::testing::test_seed() + 6));

INSTANTIATE_TEST_SUITE_P(Seeds, EconAdmissionPropertyTest,
                         ::testing::Range(peerlab::testing::test_seed(),
                                          peerlab::testing::test_seed() + 8));

}  // namespace
}  // namespace peerlab::econ
