// Fallback regressions around the candidate index: a defended broker
// whose quarantine covers the whole registry must still answer (the
// graceful all-quarantined fallback, which the index must never
// shadow), an exclude list covering the registry yields the same empty
// ranking as the scan, and gate conditions (oversized excludes, blind
// with excludes) route to the scan with the fallback counter moving.

#include <gtest/gtest.h>

#include <memory>

#include "core/selection_reference.hpp"
#include "overlay/overlay_world.hpp"
#include "peerlab/core/blind.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/overlay/broker.hpp"

namespace peerlab::overlay {
namespace {

using testing::OverlayWorld;
using testing::WorldOptions;

core::SelectionContext context_at(Seconds now) {
  core::SelectionContext ctx;
  ctx.now = now;
  return ctx;
}

TEST(SelectionFallback, AllQuarantinedStillAnswersOnDefendedBroker) {
  WorldOptions options;
  options.clients = 4;
  options.broker_config.reputation.enabled = true;
  OverlayWorld world(options);
  world.boot(2.0);
  // Defenses on: the index must have stood down.
  ASSERT_FALSE(world.broker->index_active());

  const Seconds now = world.sim.now();
  for (int i = 0; i < options.clients; ++i) {
    const PeerId peer = peer_of(NodeId(i + 2));
    for (int hit = 0; hit < 4; ++hit) world.broker->reputation().record_failure(peer, now);
    ASSERT_TRUE(world.broker->reputation().quarantined(peer, now));
  }

  for (const bool economic : {false, true}) {
    if (economic) {
      world.broker->set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
    }
    const PeerId best = world.broker->select_peer(context_at(world.sim.now()));
    EXPECT_TRUE(best.valid()) << "economic=" << economic;
    const auto ranked = world.broker->select_peers(context_at(world.sim.now()), 2);
    EXPECT_FALSE(ranked.empty()) << "economic=" << economic;
  }
}

TEST(SelectionFallback, ExcludeCoveringRegistryYieldsEmptyLikeScan) {
  WorldOptions options;
  options.clients = 4;
  OverlayWorld world(options);
  world.boot(2.0);
  world.broker->set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
  ASSERT_TRUE(world.broker->index_active());

  core::SelectionContext ctx = context_at(world.sim.now());
  for (int i = 0; i < options.clients; ++i) ctx.exclude.push_back(peer_of(NodeId(i + 2)));

  const auto snaps = world.broker->snapshot_group();
  ASSERT_EQ(snaps.size(), 4u);
  const auto got = world.broker->select_peers(ctx, 3);
  peerlab::testing::ReferenceEconomic reference;
  const auto want = peerlab::testing::ref_select_k(reference, snaps, ctx, 3);
  EXPECT_TRUE(want.empty());
  EXPECT_EQ(got, want);
  EXPECT_FALSE(world.broker->select_peer(ctx).valid());
  // The empty answer came from the index, not from a silent bail-out.
  EXPECT_GT(world.broker->candidate_index().fast_path_selections(), 0u);
  EXPECT_EQ(world.broker->candidate_index().scan_fallbacks(), 0u);
}

TEST(SelectionFallback, OversizedExcludeListFallsBackToScan) {
  WorldOptions options;
  options.clients = 4;
  OverlayWorld world(options);
  world.boot(2.0);
  world.broker->set_selection_model(std::make_unique<core::EconomicSchedulingModel>());

  core::SelectionContext ctx = context_at(world.sim.now());
  // 65 entries — one past the inline-exclude budget; the targets don't
  // need to exist for the gate to trip.
  for (std::uint64_t i = 0; i < 65; ++i) ctx.exclude.push_back(PeerId(1000 + i));

  const auto snaps = world.broker->snapshot_group();
  const auto before = world.broker->candidate_index().scan_fallbacks();
  const auto got = world.broker->select_peers(ctx, 2);
  EXPECT_GT(world.broker->candidate_index().scan_fallbacks(), before);
  peerlab::testing::ReferenceEconomic reference;
  EXPECT_EQ(got, peerlab::testing::ref_select_k(reference, snaps, ctx, 2));
}

TEST(SelectionFallback, BlindWithExcludesFallsBackToScan) {
  WorldOptions options;
  options.clients = 4;
  OverlayWorld world(options);
  world.boot(2.0);
  ASSERT_TRUE(world.broker->index_active());

  core::SelectionContext ctx = context_at(world.sim.now());
  ctx.exclude.push_back(peer_of(NodeId(2)));

  const auto snaps = world.broker->snapshot_group();
  const auto before = world.broker->candidate_index().scan_fallbacks();
  peerlab::testing::ReferenceBlind reference;
  const auto want = peerlab::testing::ref_select_k(reference, snaps, ctx, 2);
  const auto got = world.broker->select_peers(ctx, 2);
  EXPECT_GT(world.broker->candidate_index().scan_fallbacks(), before);
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace peerlab::overlay
