#include "peerlab/overlay/file_service.hpp"

#include <gtest/gtest.h>

#include "overlay_world.hpp"

namespace peerlab::overlay {
namespace {

using testing::OverlayWorld;
using testing::WorldOptions;

TEST(FileService, TransferCompletesAndReportsToBroker) {
  OverlayWorld w;
  w.boot();
  std::optional<transport::TransferResult> result;
  transport::FileTransferConfig cfg;
  cfg.file_size = megabytes(1.0);
  cfg.parts = 4;
  w.client(0).files().send_file(PeerId(3), cfg, [&](const transport::TransferResult& r) {
    result = r;
  });
  w.sim.run_until(w.sim.now() + 60.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(w.client(0).files().transfers_completed(), 1u);

  // The broker learned about the destination peer.
  const auto& stats = w.broker->statistics_for(PeerId(3));
  EXPECT_DOUBLE_EQ(stats.value(stats::Criterion::kFileSentTotal, w.sim.now()), 100.0);
  ASSERT_TRUE(w.broker->history().mean_transfer_rate(PeerId(3)).has_value());
  EXPECT_GT(*w.broker->history().mean_transfer_rate(PeerId(3)), 0.0);
  ASSERT_TRUE(w.broker->history().mean_response_time(PeerId(3)).has_value());
}

TEST(FileService, CancelledTransferIsReportedAsCancellation) {
  OverlayWorld w;
  w.boot();
  transport::FileTransferConfig cfg;
  cfg.file_size = megabytes(50.0);
  cfg.parts = 1;
  std::optional<transport::TransferResult> result;
  const TransferId id = w.client(0).files().send_file(
      PeerId(3), cfg, [&](const transport::TransferResult& r) { result = r; });
  w.sim.schedule(2.0, [&] { w.client(0).files().cancel(id); });
  w.sim.run_until(w.sim.now() + 30.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete);
  const auto& stats = w.broker->statistics_for(PeerId(3));
  EXPECT_DOUBLE_EQ(stats.value(stats::Criterion::kFileCancelTotal, w.sim.now()), 100.0);
}

TEST(FileService, FailedTransferIsReportedAsFailure) {
  WorldOptions opts;
  opts.loss_per_megabyte = 0.999;
  OverlayWorld w(opts);
  w.boot();
  transport::FileTransferConfig cfg;
  cfg.file_size = megabytes(1.0);
  cfg.parts = 1;
  cfg.max_part_attempts = 2;
  std::optional<transport::TransferResult> result;
  w.client(0).files().send_file(PeerId(3), cfg,
                                [&](const transport::TransferResult& r) { result = r; });
  w.sim.run_until(w.sim.now() + 300.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete);
  const auto& stats = w.broker->statistics_for(PeerId(3));
  EXPECT_DOUBLE_EQ(stats.value(stats::Criterion::kFileSentTotal, w.sim.now()), 0.0);
  EXPECT_DOUBLE_EQ(stats.value(stats::Criterion::kFileCancelTotal, w.sim.now()), 0.0);
}

TEST(FileService, PetitionTimesAccumulateInHistory) {
  OverlayWorld w;
  w.boot();
  transport::FileTransferConfig cfg;
  cfg.file_size = megabytes(0.5);
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    w.client(0).files().send_file(PeerId(4), cfg,
                                  [&](const transport::TransferResult&) { ++done; });
  }
  w.sim.run_until(w.sim.now() + 120.0);
  EXPECT_EQ(done, 3);
  EXPECT_TRUE(w.broker->history().mean_response_time(PeerId(4)).has_value());
  EXPECT_EQ(w.broker->history().transfers_for(PeerId(4)).size(), 3u);
}

}  // namespace
}  // namespace peerlab::overlay
