// Broker-failover acceptance: the primary broker crashes for good in
// the middle of a scatter distribution (together with one share
// holder), and the distribution must still complete — the standby is
// elected from the replication stream, the flock re-homes to it, and
// the replacement petition is answered from the *replicated* warm-up
// history rather than cold state. A second test pins the in-flight
// petition path: a selection issued against the already-dead primary
// is re-issued to the elected standby and answered.

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "peerlab/core/economic.hpp"
#include "peerlab/net/fault_plan.hpp"
#include "peerlab/planetlab/deployment.hpp"

namespace peerlab::overlay {
namespace {

using planetlab::Deployment;
using planetlab::DeploymentOptions;
using transport::FileTransferConfig;
using transport::TransferResult;

/// Churn-tuned knobs (as in bench_churn): fail fast so a dead peer
/// triggers failover well before the test's patience runs out.
FileTransferConfig churn_transfer() {
  FileTransferConfig cfg;
  cfg.petition_retry.initial_timeout = 15.0;
  cfg.petition_retry.backoff = 1.5;
  cfg.petition_retry.max_attempts = 4;
  cfg.confirm_timeout = 30.0;
  cfg.max_confirm_queries = 6;
  cfg.max_part_attempts = 6;
  return cfg;
}

DistributionOptions churn_failover() {
  DistributionOptions options;
  options.max_failovers_per_share = 4;
  options.backoff_initial = 10.0;
  options.backoff_factor = 2.0;
  options.backoff_cap = 120.0;
  return options;
}

/// Serial warm-up transfers so the broker's history ranks every SC —
/// and, through the delta stream, the standby's history too.
void warm_up(Deployment& dep) {
  sim::Simulator& sim = dep.simulator();
  Seconds at = sim.now() + 10.0;
  for (int i = 1; i <= 8; ++i) {
    sim.schedule_at(at, [&dep, i] {
      FileTransferConfig cfg = churn_transfer();
      cfg.file_size = megabytes(2.0);
      cfg.parts = 2;
      dep.control().files().send_file(dep.sc_peer(i), cfg, [](const TransferResult&) {});
    });
    at += 300.0;
  }
  sim.run_until(at + 300.0);
}

TEST(ReplicaFailover, CrashPrimaryMidDistributeCompletesOnReplicatedState) {
  sim::Simulator sim(11);
  DeploymentOptions options;
  options.standby_brokers = 1;
  Deployment dep(sim, options);
  dep.boot();
  warm_up(dep);

  dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
  dep.standby_at(0).set_selection_model(std::make_unique<core::EconomicSchedulingModel>());

  // The standby already carries the replicated warm-up history: this is
  // the state a post-failover selection feeds on (not a cold store).
  ASSERT_FALSE(dep.standby_at(0).history().transfers_for(dep.sc_peer(1)).empty());
  ASSERT_EQ(dep.replicas()->applied_seq(dep.standby_at(0).node()),
            dep.replicas()->stream_seq());

  // Broker-mediated selection of the initial share holders.
  std::vector<PeerId> selected;
  {
    core::SelectionContext ctx;
    ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
    ctx.payload_size = 32 * kMegabyte;
    ctx.now = sim.now();
    bool got = false;
    dep.control().request_selection(ctx, 3, [&](std::vector<PeerId> peers) {
      selected = std::move(peers);
      got = true;
    });
    sim.run_until(sim.now() + 60.0);
    ASSERT_TRUE(got);
    ASSERT_GE(selected.size(), 2u);
    if (selected.size() > 3) selected.resize(3);
  }

  const NodeId old_primary = dep.broker().node();
  const NodeId standby_node = dep.standby_at(0).node();
  // 1.5 s into the distribution — first parts on the wire — one share
  // holder dies mid-transfer (forcing a replacement petition) and so
  // does the primary broker (forcing that petition through election +
  // re-homing).
  net::FaultPlan plan;
  plan.crash_forever(sim.now() + 1.5, node_of(selected.front()));
  plan.crash_forever(sim.now() + 1.5, old_primary);
  dep.install_faults(std::move(plan));

  std::optional<FileService::DistributionResult> result;
  dep.control().files().distribute(
      32 * kMegabyte, 6, selected, churn_transfer(),
      [&](const FileService::DistributionResult& r) { result = r; }, churn_failover());
  sim.run();
  // The failure detector is a daemon: give it a window in case the
  // distribution outran the election.
  sim.run_until(sim.now() + 60.0);

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);  // nothing stranded by the dead broker
  EXPECT_GE(result->failovers, 1);
  EXPECT_GE(dep.replicas()->elections(), 1u);
  EXPECT_TRUE(dep.replicas()->is_primary(standby_node));
  EXPECT_EQ(dep.control().broker_node(), standby_node);  // flock re-homed

  // Post-failover selection is served by the new primary from the
  // replicated history.
  const std::uint64_t served_before = dep.standby_at(0).selections_served();
  std::optional<std::vector<PeerId>> after;
  core::SelectionContext ctx;
  ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
  ctx.now = sim.now();
  dep.control().request_selection(ctx, 2,
                                  [&](std::vector<PeerId> peers) { after = peers; });
  sim.run();
  ASSERT_TRUE(after.has_value());
  EXPECT_FALSE(after->empty());
  EXPECT_GT(dep.standby_at(0).selections_served(), served_before);
}

TEST(ReplicaFailover, InFlightSelectionIsReissuedToTheNewPrimary) {
  sim::Simulator sim(7);
  DeploymentOptions options;
  options.standby_brokers = 1;
  Deployment dep(sim, options);
  dep.boot();
  // Let a few anti-entropy snapshots ship so the standby's client
  // registry is warm before the primary disappears.
  sim.run_until(sim.now() + 200.0);

  const NodeId old_primary = dep.broker().node();
  const NodeId standby_node = dep.standby_at(0).node();
  net::FaultPlan plan;
  plan.crash_forever(sim.now() + 1.0, old_primary);
  dep.install_faults(std::move(plan));
  sim.run_until(sim.now() + 2.0);  // primary is now dead, election pending

  // Petition the dead primary: the request sits in the reliable
  // channel until the election re-homes the client, which fails the
  // pending request and re-issues it against the new primary.
  std::optional<std::vector<PeerId>> peers;
  core::SelectionContext ctx;
  ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
  ctx.now = sim.now();
  dep.control().request_selection(ctx, 2,
                                  [&](std::vector<PeerId> p) { peers = std::move(p); });
  sim.run();

  EXPECT_GE(dep.replicas()->elections(), 1u);
  EXPECT_EQ(dep.control().broker_node(), standby_node);
  EXPECT_GE(dep.control().selection_reissues(), 1u);
  ASSERT_TRUE(peers.has_value());
  EXPECT_FALSE(peers->empty());  // answered by the elected standby
}

}  // namespace
}  // namespace peerlab::overlay
