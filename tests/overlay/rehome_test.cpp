// Broker failover: a client re-homes to a surviving broker and keeps
// working (registration, discovery, selection, groups).

#include <gtest/gtest.h>

#include <optional>

#include "peerlab/common/check.hpp"
#include "peerlab/planetlab/deployment.hpp"

namespace peerlab::overlay {
namespace {

TEST(Rehome, ClientRegistersAtTheNewBroker) {
  sim::Simulator sim(1);
  planetlab::DeploymentOptions opts;
  opts.brokers = 2;
  planetlab::Deployment dep(sim, opts);
  dep.boot();
  auto& sc1 = dep.sc(1);
  const NodeId old_broker = sc1.broker_node();
  const NodeId new_broker =
      old_broker == dep.broker_at(0).node() ? dep.broker_at(1).node() : dep.broker_at(0).node();
  auto& target = old_broker == dep.broker_at(0).node() ? dep.broker_at(1) : dep.broker_at(0);

  sc1.rehome(new_broker);
  sim.run_until(sim.now() + 5.0);
  EXPECT_EQ(sc1.broker_node(), new_broker);
  EXPECT_TRUE(target.online(sc1.id()));
}

TEST(Rehome, SelectionAndDiscoveryFollowTheNewBroker) {
  sim::Simulator sim(2);
  planetlab::DeploymentOptions opts;
  opts.brokers = 2;
  planetlab::Deployment dep(sim, opts);
  dep.boot();

  auto& sc1 = dep.sc(1);  // homed at broker 0
  ASSERT_EQ(sc1.broker_node(), dep.broker_at(0).node());
  sc1.rehome(dep.broker_at(1).node());
  sim.run_until(sim.now() + 5.0);

  // Selection requests now hit broker 1 (whose group includes SC1).
  const auto before = dep.broker_at(1).selections_served();
  std::optional<std::vector<PeerId>> selected;
  core::SelectionContext ctx;
  sc1.request_selection(ctx, 2, [&](std::vector<PeerId> peers) { selected = std::move(peers); });
  // Generous window: the request channel retries after 45 s if the
  // rare background datagram loss eats the first attempt.
  sim.run_until(sim.now() + 120.0);
  ASSERT_TRUE(selected.has_value());
  EXPECT_FALSE(selected->empty());
  EXPECT_EQ(dep.broker_at(1).selections_served(), before + 1);

  // Adverts publish to the new rendezvous.
  Primitives api(sc1);
  api.share_content("after-failover.txt", kilobytes(1.0));
  sim.run_until(sim.now() + 5.0);
  jxta::AdvertisementQuery q;
  q.kind = jxta::AdvertisementKind::kContent;
  q.name = "after-failover.txt";
  EXPECT_EQ(dep.broker_at(1).rendezvous().query(q).size(), 1u);
  EXPECT_TRUE(dep.broker_at(0).rendezvous().query(q).empty());
}

TEST(Rehome, SurvivesBrokerDeathMidRun) {
  sim::Simulator sim(3);
  planetlab::DeploymentOptions opts;
  opts.brokers = 2;
  opts.client.heartbeat_interval = 10.0;
  planetlab::Deployment dep(sim, opts);
  dep.boot();

  // Kill broker 0's software; its clients re-home to broker 1.
  const NodeId survivor = dep.broker_at(1).node();
  std::vector<int> orphans;
  for (int i = 1; i <= 8; ++i) {
    if (dep.sc(i).broker_node() == dep.broker_at(0).node()) orphans.push_back(i);
  }
  ASSERT_FALSE(orphans.empty());
  for (const int i : orphans) {
    dep.sc(i).rehome(survivor);
  }
  sim.run_until(sim.now() + 15.0);
  for (const int i : orphans) {
    EXPECT_TRUE(dep.broker_at(1).online(dep.sc_peer(i))) << "SC" << i;
  }
  // The surviving broker can now select among everyone.
  core::SelectionContext ctx;
  EXPECT_EQ(dep.broker_at(1).select_peers(ctx, 99).size(), 8u);
}

TEST(Rehome, Validation) {
  sim::Simulator sim(4);
  planetlab::Deployment dep(sim);
  EXPECT_THROW(dep.sc(1).rehome(NodeId{}), InvariantError);
  EXPECT_THROW(dep.sc(1).rehome(dep.sc(1).node()), InvariantError);
}

TEST(ClientKind, AdvertisedRoleMatchesKind) {
  sim::Simulator sim(5);
  planetlab::DeploymentOptions opts;
  opts.client.kind = ClientKind::kGuiClient;
  planetlab::Deployment dep(sim, opts);
  dep.boot();
  jxta::AdvertisementQuery q;
  q.kind = jxta::AdvertisementKind::kPeer;
  q.attribute_equals["role"] = "client";
  EXPECT_EQ(dep.broker().rendezvous().query(q).size(), 8u);
  EXPECT_STREQ(to_string(ClientKind::kSimpleClient), "simpleclient");
  EXPECT_STREQ(to_string(ClientKind::kGuiClient), "client");
}

}  // namespace
}  // namespace peerlab::overlay
