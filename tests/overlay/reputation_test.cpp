// ReputationBook unit behaviour: penalties and rewards, exponential
// decay toward neutral, quarantine arming / expiry / probation, and
// the throttle-shortfall detector against a peer's own rate record.

#include <gtest/gtest.h>

#include <vector>

#include "peerlab/obs/metrics.hpp"
#include "peerlab/overlay/reputation.hpp"

namespace peerlab::overlay {
namespace {

/// Decay and quarantine switched off: score arithmetic in isolation.
ReputationConfig flat_config() {
  ReputationConfig cfg;
  cfg.enabled = true;
  cfg.decay_half_life = 0.0;
  cfg.quarantine_below = 0.0;  // never triggers
  return cfg;
}

TEST(ReputationBook, UnknownPeerScoresInitialAndIsNotQuarantined) {
  const ReputationBook book(flat_config());
  EXPECT_DOUBLE_EQ(book.score(PeerId(7), 100.0), 1.0);
  EXPECT_FALSE(book.quarantined(PeerId(7), 100.0));
  std::vector<PeerId> out;
  book.append_quarantined(100.0, out);
  EXPECT_TRUE(out.empty());
}

TEST(ReputationBook, FailuresSubtractAndSuccessesAddBack) {
  ReputationBook book(flat_config());
  const PeerId p(3);
  book.record_failure(p, 0.0);
  EXPECT_DOUBLE_EQ(book.score(p, 0.0), 1.0 - book.config().failure_penalty);
  book.record_success(p, 0.0);
  EXPECT_DOUBLE_EQ(book.score(p, 0.0),
                   1.0 - book.config().failure_penalty + book.config().success_reward);
  // The reward cannot push a spotless peer above full trust.
  const PeerId clean(4);
  book.record_success(clean, 0.0);
  EXPECT_DOUBLE_EQ(book.score(clean, 0.0), 1.0);
  EXPECT_EQ(book.failures_recorded(), 1u);
  EXPECT_EQ(book.successes_recorded(), 2u);
}

TEST(ReputationBook, ScoreDecaysTowardNeutralWithTheConfiguredHalfLife) {
  ReputationConfig cfg = flat_config();
  cfg.decay_half_life = 600.0;
  ReputationBook book(cfg);
  const PeerId p(3);
  book.record_failure(p, 0.0);  // 0.75
  EXPECT_DOUBLE_EQ(book.score(p, 0.0), 0.75);
  // One half-life halves the distance to 1.0; two quarter it.
  EXPECT_NEAR(book.score(p, 600.0), 0.875, 1e-12);
  EXPECT_NEAR(book.score(p, 1200.0), 0.9375, 1e-12);
  // Queries never mutate: asking at a later time first does not change
  // the answer for an earlier one.
  EXPECT_DOUBLE_EQ(book.score(p, 0.0), 0.75);
}

TEST(ReputationBook, ZeroHalfLifeDisablesDecay) {
  ReputationBook book(flat_config());
  const PeerId p(3);
  book.record_failure(p, 0.0);
  EXPECT_DOUBLE_EQ(book.score(p, 1e6), 0.75);
}

TEST(ReputationBook, RepeatedLiesArmQuarantineAndExpiryLiftsToProbation) {
  ReputationConfig cfg;
  cfg.enabled = true;
  cfg.decay_half_life = 0.0;
  cfg.quarantine_duration = 100.0;
  ReputationBook book(cfg);
  const PeerId liar(5);
  book.record_lie(liar, 0.0);  // 0.6
  EXPECT_FALSE(book.quarantined(liar, 0.0));
  book.record_lie(liar, 0.0);  // 0.2 < 0.3 -> quarantined until 100
  EXPECT_TRUE(book.quarantined(liar, 0.0));
  EXPECT_TRUE(book.quarantined(liar, 99.9));
  EXPECT_EQ(book.quarantines_imposed(), 1u);
  EXPECT_EQ(book.lies_recorded(), 2u);

  std::vector<PeerId> out;
  book.append_quarantined(50.0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], liar);

  // Expiry: free again, and on probation rather than still in the hole
  // (otherwise the next minor slip would re-quarantine forever).
  EXPECT_FALSE(book.quarantined(liar, 100.0));
  EXPECT_DOUBLE_EQ(book.score(liar, 100.0), cfg.probation_score);
  out.clear();
  book.append_quarantined(150.0, out);
  EXPECT_TRUE(out.empty());

  // A fresh offense after probation can re-arm quarantine.
  book.record_lie(liar, 150.0);  // 0.5 - 0.4 = 0.1 < 0.3
  EXPECT_TRUE(book.quarantined(liar, 150.0));
  EXPECT_EQ(book.quarantines_imposed(), 2u);
}

TEST(ReputationBook, TransferShortfallAgainstOwnTrackRecordIsAThrottle) {
  ReputationBook book(flat_config());
  const PeerId p(6);
  stats::TransferRecord good;
  good.transfer = TransferId(1);
  good.peer = p;
  good.size = megabytes(1.0);
  good.duration = 1.0;  // ~8 Mbps establishes the track record
  good.ok = true;
  book.record_transfer(p, good, 0.0);
  EXPECT_EQ(book.successes_recorded(), 1u);
  EXPECT_EQ(book.shortfalls_recorded(), 0u);

  stats::TransferRecord slow = good;
  slow.transfer = TransferId(2);
  slow.duration = 10.0;  // ~0.8 Mbps, far under half its own record
  book.record_transfer(p, slow, 0.0);
  EXPECT_EQ(book.shortfalls_recorded(), 1u);
  EXPECT_EQ(book.successes_recorded(), 1u);  // not rewarded
  // The first success clamped at full trust, so only the shortfall shows.
  EXPECT_DOUBLE_EQ(book.score(p, 0.0), 1.0 - book.config().shortfall_penalty);

  // A failed transfer is a plain failure regardless of rate history.
  stats::TransferRecord failed = good;
  failed.transfer = TransferId(3);
  failed.ok = false;
  book.record_transfer(p, failed, 0.0);
  EXPECT_EQ(book.failures_recorded(), 1u);
}

TEST(ReputationBook, AttachedCountersTrackEveryObservation) {
  obs::MetricRegistry registry;
  ReputationConfig cfg;
  cfg.enabled = true;
  cfg.decay_half_life = 0.0;
  ReputationBook book(cfg);
  book.attach_metrics(registry);
  const PeerId p(9);
  book.record_success(p, 0.0);
  book.record_failure(p, 0.0);
  book.record_lie(p, 0.0);   // 0.4 -> no quarantine yet
  book.record_lie(p, 0.0);   // 0.0 -> quarantined
  EXPECT_EQ(registry.counter("reputation.successes").value(), 1u);
  EXPECT_EQ(registry.counter("reputation.failures").value(), 1u);
  EXPECT_EQ(registry.counter("reputation.lies").value(), 2u);
  EXPECT_EQ(registry.counter("reputation.quarantines").value(), 1u);
}

}  // namespace
}  // namespace peerlab::overlay
