// Causal-chain acceptance over the live overlay: one TraceId must tie
// a workload together end to end — petition handshake, data phase,
// confirms, stats feedback — and keep doing so across broker failover
// (share death, replacement petition, selection re-issue against the
// elected standby). The invariant watchdog rides along: silent on the
// green paths, loud on an injected lost-confirm and an unterminated
// petition. The failover dump is also fed through
// scripts/trace_analyze.py to pin the reconstruction tooling.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "peerlab/core/economic.hpp"
#include "peerlab/net/fault_plan.hpp"
#include "peerlab/obs/trace.hpp"
#include "peerlab/obs/watchdog.hpp"
#include "peerlab/planetlab/deployment.hpp"

namespace peerlab::overlay {
namespace {

using obs::Watchdog;
using obs::trace::TraceContext;
using obs::trace::TraceKind;
using obs::trace::TraceRecorder;
using planetlab::Deployment;
using planetlab::DeploymentOptions;
using transport::FileTransferConfig;
using transport::TransferResult;

FileTransferConfig churn_transfer() {
  FileTransferConfig cfg;
  cfg.petition_retry.initial_timeout = 15.0;
  cfg.petition_retry.backoff = 1.5;
  cfg.petition_retry.max_attempts = 4;
  cfg.confirm_timeout = 30.0;
  cfg.max_confirm_queries = 6;
  cfg.max_part_attempts = 6;
  return cfg;
}

DistributionOptions churn_failover() {
  DistributionOptions options;
  options.max_failovers_per_share = 4;
  options.backoff_initial = 10.0;
  options.backoff_factor = 2.0;
  options.backoff_cap = 120.0;
  return options;
}

void warm_up(Deployment& dep) {
  sim::Simulator& sim = dep.simulator();
  Seconds at = sim.now() + 10.0;
  for (int i = 1; i <= 8; ++i) {
    sim.schedule_at(at, [&dep, i] {
      FileTransferConfig cfg = churn_transfer();
      cfg.file_size = megabytes(2.0);
      cfg.parts = 2;
      dep.control().files().send_file(dep.sc_peer(i), cfg, [](const TransferResult&) {});
    });
    at += 300.0;
  }
  sim.run_until(at + 300.0);
}

std::set<TraceKind> kinds_of(const std::vector<obs::trace::TraceRecord>& records) {
  std::set<TraceKind> kinds;
  for (const auto& r : records) kinds.insert(r.kind);
  return kinds;
}

TEST(TraceChain, GreenTransferChainIsCompleteAndWatchdogSilent) {
  sim::Simulator sim(3);
  Deployment dep(sim);
  dep.boot();
  TraceRecorder rec(sim);
  Watchdog dog(rec);
  dep.attach_tracing(&rec);

  FileTransferConfig cfg = churn_transfer();
  cfg.file_size = megabytes(4.0);
  cfg.parts = 4;
  cfg.trace = rec.root();
  std::optional<TransferResult> result;
  dep.control().files().send_file(dep.sc_peer(2), cfg,
                                  [&](const TransferResult& r) { result = r; });
  sim.run();

  ASSERT_TRUE(result.has_value() && result->complete);
  const auto chain = rec.chain(cfg.trace.id);
  ASSERT_FALSE(chain.empty());
  const auto kinds = kinds_of(chain);
  // The full protocol lifecycle rides one chain, across both nodes.
  for (const TraceKind k :
       {TraceKind::kPetitionSend, TraceKind::kPetitionRecv, TraceKind::kPetitionAck,
        TraceKind::kPartSend, TraceKind::kPartDelivered, TraceKind::kConfirmSend,
        TraceKind::kConfirmRecv, TraceKind::kTransferDone, TraceKind::kStatsReport,
        TraceKind::kStatsApply, TraceKind::kMsgSend, TraceKind::kMsgDeliver,
        TraceKind::kFlowStart, TraceKind::kFlowFinish}) {
    EXPECT_TRUE(kinds.count(k)) << "missing kind " << to_string(k);
  }
  std::set<std::uint64_t> nodes;
  for (const auto& r : chain) nodes.insert(r.node.value());
  EXPECT_GE(nodes.size(), 2u);  // sender and receiver both contribute

  dog.finalize();
  EXPECT_TRUE(dog.violations().empty());
  dep.attach_tracing(nullptr);
}

TEST(TraceChain, SelectionReissueSpansBrokerFailover) {
  sim::Simulator sim(7);
  DeploymentOptions options;
  options.standby_brokers = 1;
  Deployment dep(sim, options);
  dep.boot();
  sim.run_until(sim.now() + 200.0);

  TraceRecorder rec(sim);
  Watchdog dog(rec);
  dep.attach_tracing(&rec);

  const NodeId old_primary = dep.broker().node();
  net::FaultPlan plan;
  plan.crash_forever(sim.now() + 1.0, old_primary);
  dep.install_faults(std::move(plan));
  sim.run_until(sim.now() + 2.0);

  // Traced petition against the already-dead primary: the chain must
  // cover the failed leg, the re-issue, and the standby's answer.
  const TraceContext root = rec.root();
  std::optional<std::vector<PeerId>> peers;
  core::SelectionContext ctx;
  ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
  ctx.now = sim.now();
  ctx.trace = root;
  dep.control().request_selection(ctx, 2,
                                  [&](std::vector<PeerId> p) { peers = std::move(p); });
  sim.run();

  ASSERT_TRUE(peers.has_value());
  EXPECT_FALSE(peers->empty());
  EXPECT_GE(dep.control().selection_reissues(), 1u);

  const auto chain = rec.chain(root.id);
  const auto kinds = kinds_of(chain);
  for (const TraceKind k : {TraceKind::kSelectRequest, TraceKind::kSelectFail,
                            TraceKind::kSelectReissue, TraceKind::kSelectServe,
                            TraceKind::kSelectDeliver}) {
    EXPECT_TRUE(kinds.count(k)) << "missing kind " << to_string(k);
  }
  // The re-issued request runs under a fresh span of the same trace.
  std::set<std::uint32_t> request_spans;
  for (const auto& r : chain) {
    if (r.kind == TraceKind::kSelectRequest) request_spans.insert(r.span);
  }
  EXPECT_GE(request_spans.size(), 2u);

  // The infrastructure events land as ambients alongside the chain.
  const auto ambient = kinds_of(rec.chain(0));
  EXPECT_TRUE(ambient.count(TraceKind::kCrash));
  EXPECT_TRUE(ambient.count(TraceKind::kFailover));
  EXPECT_TRUE(ambient.count(TraceKind::kRehome));

  // Exactly-once re-issue is the legal failover path: no violations.
  dog.finalize();
  EXPECT_TRUE(dog.violations().empty());

  // Pin the reconstruction tooling against this very dump.
  if (std::system("python3 --version > /dev/null 2>&1") != 0) {
    dep.attach_tracing(nullptr);
    GTEST_SKIP() << "python3 unavailable";
  }
  const std::string dump = "trace_chain_failover.trace.jsonl";
  rec.write_jsonl(dump);
  const std::string cmd = std::string("python3 ") + PEERLAB_SOURCE_DIR
                          "/scripts/trace_analyze.py " + dump + " --trace " +
                          std::to_string(root.id) + " > trace_chain_failover.out 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  std::FILE* f = std::fopen("trace_chain_failover.out", "rb");
  ASSERT_NE(f, nullptr);
  std::string out;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;) out.append(buf, n);
  std::fclose(f);
  EXPECT_NE(out.find("select-reissue"), std::string::npos) << out;
  EXPECT_NE(out.find("failover leg"), std::string::npos) << out;
  EXPECT_NE(out.find("selection stages"), std::string::npos) << out;
  EXPECT_NE(out.find("1 reissue(s)"), std::string::npos) << out;
  std::remove(dump.c_str());
  std::remove("trace_chain_failover.out");
  dep.attach_tracing(nullptr);
}

TEST(TraceChain, DistributionChainSurvivesShareDeathAndBrokerCrash) {
  sim::Simulator sim(11);
  DeploymentOptions options;
  options.standby_brokers = 1;
  Deployment dep(sim, options);
  dep.boot();
  warm_up(dep);

  dep.broker().set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
  dep.standby_at(0).set_selection_model(std::make_unique<core::EconomicSchedulingModel>());

  std::vector<PeerId> selected;
  {
    core::SelectionContext ctx;
    ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
    ctx.payload_size = 32 * kMegabyte;
    ctx.now = sim.now();
    bool got = false;
    dep.control().request_selection(ctx, 3, [&](std::vector<PeerId> peers) {
      selected = std::move(peers);
      got = true;
    });
    sim.run_until(sim.now() + 60.0);
    ASSERT_TRUE(got);
    ASSERT_GE(selected.size(), 2u);
    if (selected.size() > 3) selected.resize(3);
  }

  TraceRecorder rec(sim);
  Watchdog dog(rec);
  dep.attach_tracing(&rec);

  net::FaultPlan plan;
  plan.crash_forever(sim.now() + 1.5, node_of(selected.front()));
  plan.crash_forever(sim.now() + 1.5, dep.broker().node());
  dep.install_faults(std::move(plan));

  std::optional<FileService::DistributionResult> result;
  dep.control().files().distribute(
      32 * kMegabyte, 6, selected, churn_transfer(),
      [&](const FileService::DistributionResult& r) { result = r; }, churn_failover());
  sim.run();
  sim.run_until(sim.now() + 60.0);

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);
  EXPECT_GE(result->failovers, 1);

  // One TraceId covers the whole scatter: launches, the dead share,
  // its replacement petition (answered post-election) and the re-run.
  ASSERT_GE(rec.traces_minted(), 1u);
  const auto chain = rec.chain(1);
  const auto kinds = kinds_of(chain);
  for (const TraceKind k :
       {TraceKind::kDistStart, TraceKind::kShareLaunch, TraceKind::kPetitionSend,
        TraceKind::kShareFailover, TraceKind::kSelectRequest, TraceKind::kSelectDeliver,
        TraceKind::kTransferDone, TraceKind::kDistDone}) {
    EXPECT_TRUE(kinds.count(k)) << "missing kind " << to_string(k);
  }
  const auto ambient = kinds_of(rec.chain(0));
  EXPECT_TRUE(ambient.count(TraceKind::kCrash));
  EXPECT_TRUE(ambient.count(TraceKind::kFailover));

  dog.finalize();
  EXPECT_TRUE(dog.violations().empty());
  dep.attach_tracing(nullptr);
}

TEST(TraceChain, WatchdogFlagsForgedConfirm) {
  sim::Simulator sim(5);
  Deployment dep(sim);
  dep.boot();
  TraceRecorder rec(sim);
  Watchdog dog(rec);
  dep.attach_tracing(&rec);
  const std::string pm_path = "trace_chain_forged.postmortem.json";
  std::remove(pm_path.c_str());
  rec.arm_postmortem(pm_path);

  // A confirm for a petition that never existed (a lost/forged confirm
  // scenario): inject kPartConfirm datagrams from SC1 towards the
  // control peer under a fresh chain. Sent repeatedly because the
  // control plane is lossy; each arrival is a violation.
  const TraceContext forged = rec.root();
  for (int i = 0; i < 20; ++i) {
    sim.schedule(static_cast<double>(i) * 5.0, [&] {
      dep.sc(1).endpoint().send(dep.control().node(), transport::MessageType::kPartConfirm,
                                /*correlation=*/424242, /*seq=*/0, /*arg=*/0, forged);
    });
  }
  sim.run();

  EXPECT_GE(dog.count(Watchdog::ViolationKind::kConfirmWithoutPetition), 1u);
  // The flight recorder fired and the dump names the verdict.
  EXPECT_GE(rec.postmortems(), 1u);
  std::FILE* f = std::fopen(pm_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string out;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;) out.append(buf, n);
  std::fclose(f);
  EXPECT_NE(out.find("confirm-without-petition"), std::string::npos);
  std::remove(pm_path.c_str());
  dep.attach_tracing(nullptr);
}

TEST(TraceChain, WatchdogFlagsPetitionThatNeverTerminates) {
  sim::Simulator sim(9);
  Deployment dep(sim);
  dep.boot();
  TraceRecorder rec(sim);
  Watchdog dog(rec);
  dep.attach_tracing(&rec);

  // Petition in flight, then the world stops (an early finalize models
  // a deadline blow-out / wedged run): the liveness sweep must flag it.
  FileTransferConfig cfg = churn_transfer();
  cfg.file_size = megabytes(4.0);
  cfg.parts = 2;
  cfg.trace = rec.root();
  dep.control().files().send_file(dep.sc_peer(3), cfg, [](const TransferResult&) {});
  sim.run_until(sim.now() + 0.5);

  dog.finalize();
  EXPECT_EQ(dog.count(Watchdog::ViolationKind::kUnterminatedPetition), 1u);
  dep.attach_tracing(nullptr);
}

}  // namespace
}  // namespace peerlab::overlay
