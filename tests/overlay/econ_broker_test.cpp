// Broker-level econ engine coverage: constrained petitions route
// around the candidate index (the budget-exhaustion fallback
// regression), the engine re-ranks by quoted cost, exhausted petitions
// still answer, the objective rides the petition wire format, and a
// disabled engine is invisible — constrained or not.

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "overlay/overlay_world.hpp"
#include "peerlab/core/blind.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/overlay/broker.hpp"

namespace peerlab::overlay {
namespace {

using testing::OverlayWorld;
using testing::WorldOptions;

core::SelectionContext constrained_at(Seconds now) {
  core::SelectionContext ctx;
  ctx.now = now;
  ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
  ctx.payload_size = megabytes(4.0);
  ctx.deadline = now + 3600.0;
  ctx.budget = 1e9;  // binding in form, generous in substance
  return ctx;
}

econ::EconConfig enabled_engine() {
  econ::EconConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(EconBroker, ConstrainedContextFallsBackToScanForEveryModel) {
  for (const bool economic_model : {false, true}) {
    WorldOptions options;
    options.clients = 4;
    OverlayWorld world(options);
    world.boot(2.0);
    if (economic_model) {
      world.broker->set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
    }
    ASSERT_TRUE(world.broker->index_active());

    // Warm the fast path so the fallback below is attributable.
    core::SelectionContext plain;
    plain.now = world.sim.now();
    (void)world.broker->select_peers(plain, 2);
    const auto fallbacks_before = world.broker->candidate_index().scan_fallbacks();
    const auto fast_before = world.broker->candidate_index().fast_path_selections();
    EXPECT_GT(fast_before, 0u);

    // A budget alone, a deadline alone, and a bare objective must each
    // refuse the index walk — even for models that ignore them.
    core::SelectionContext budgeted = plain;
    budgeted.budget = 10.0;
    core::SelectionContext dated = plain;
    dated.deadline = plain.now + 60.0;
    core::SelectionContext aimed = plain;
    aimed.objective = core::EconObjective::kEfficiency;
    for (const auto* ctx : {&budgeted, &dated, &aimed}) {
      (void)world.broker->select_peers(*ctx, 2);
    }
    EXPECT_EQ(world.broker->candidate_index().scan_fallbacks(), fallbacks_before + 3)
        << "economic_model=" << economic_model;
    EXPECT_EQ(world.broker->candidate_index().fast_path_selections(), fast_before);
  }
}

TEST(EconBroker, DisabledEngineIgnoresConstraintsExactly) {
  // Same world twice; the arms differ only in the engine toggle. With
  // the engine off, a constrained petition must take the pristine path
  // (and the pristine path must not know constraints exist).
  WorldOptions plain_options;
  plain_options.clients = 4;
  OverlayWorld pristine(plain_options);
  pristine.boot(2.0);

  WorldOptions econ_options;
  econ_options.clients = 4;
  econ_options.broker_config.econ = enabled_engine();
  econ_options.broker_config.econ.enabled = false;  // present but off
  OverlayWorld disabled(econ_options);
  disabled.boot(2.0);

  const auto ctx_a = constrained_at(pristine.sim.now());
  const auto ctx_b = constrained_at(disabled.sim.now());
  EXPECT_EQ(pristine.broker->select_peers(ctx_a, 3), disabled.broker->select_peers(ctx_b, 3));
  EXPECT_EQ(disabled.broker->econ_engine().petitions(), 0u);
}

TEST(EconBroker, EnabledEngineLeavesUnconstrainedPetitionsAlone) {
  WorldOptions options;
  options.clients = 4;
  options.broker_config.econ = enabled_engine();
  OverlayWorld world(options);
  world.boot(2.0);
  core::SelectionContext plain;
  plain.now = world.sim.now();
  (void)world.broker->select_peers(plain, 3);
  (void)world.broker->select_peer(plain);
  // The engine never saw them; the index served them.
  EXPECT_EQ(world.broker->econ_engine().petitions(), 0u);
  EXPECT_GT(world.broker->candidate_index().fast_path_selections(), 0u);
}

TEST(EconBroker, CostTimeAdmissionPicksTheCheapestQuote) {
  WorldOptions options;
  options.clients = 5;
  options.broker_config.econ = enabled_engine();
  OverlayWorld world(options);
  world.boot(2.0);

  const auto ctx = constrained_at(world.sim.now());
  const PeerId picked = world.broker->select_peer(ctx);
  ASSERT_TRUE(picked.valid());

  // Recompute every quote the engine saw; the pick must be the
  // cheapest (cost-time default, everyone feasible, fresh world =>
  // distinct seeded prices, no ties).
  const econ::EconEngine quoter(enabled_engine());
  double best_cost = std::numeric_limits<double>::infinity();
  PeerId best;
  for (const auto& snap : world.broker->snapshot_group()) {
    const double cost = quoter.appraise(snap, ctx).cost;
    if (cost < best_cost) {
      best_cost = cost;
      best = snap.peer;
    }
  }
  EXPECT_EQ(picked, best);
  EXPECT_EQ(world.broker->econ_engine().petitions(), 1u);
  EXPECT_GT(world.broker->econ_engine().admitted(), 0u);
}

TEST(EconBroker, ExhaustedPetitionStillAnswers) {
  WorldOptions options;
  options.clients = 3;
  options.broker_config.econ = enabled_engine();
  OverlayWorld world(options);
  world.boot(2.0);

  auto ctx = constrained_at(world.sim.now());
  ctx.budget = 1e-9;  // nobody can quote under this
  const PeerId picked = world.broker->select_peer(ctx);
  EXPECT_TRUE(picked.valid());  // least-bad service, never a refusal
  EXPECT_EQ(world.broker->econ_engine().exhausted(), 1u);
}

TEST(EconBroker, ObjectiveRidesThePetitionWireFormat) {
  WorldOptions options;
  options.clients = 3;
  options.broker_config.econ = enabled_engine();
  OverlayWorld world(options);
  world.boot(2.0);

  auto ctx = constrained_at(world.sim.now());
  ctx.objective = core::EconObjective::kEfficiency;
  std::vector<PeerId> got;
  bool done = false;
  world.client(0).request_selection(ctx, 2, [&](std::vector<PeerId> peers) {
    got = std::move(peers);
    done = true;
  });
  world.sim.run_until(world.sim.now() + 60.0);
  ASSERT_TRUE(done);
  EXPECT_FALSE(got.empty());
  // The broker-side engine processed the petition it peeked off the
  // ticket store — the whole context (objective included) survived the
  // wire.
  EXPECT_EQ(world.broker->econ_engine().petitions(), 1u);
}

TEST(EconBroker, QuarantinedPeersStayExcludedOnTheEconPath) {
  WorldOptions options;
  options.clients = 4;
  options.broker_config.econ = enabled_engine();
  options.broker_config.reputation.enabled = true;
  OverlayWorld world(options);
  world.boot(2.0);

  const PeerId bad = peer_of(NodeId(2));
  const Seconds now = world.sim.now();
  for (int hit = 0; hit < 4; ++hit) world.broker->reputation().record_failure(bad, now);
  ASSERT_TRUE(world.broker->reputation().quarantined(bad, now));

  const auto ranked = world.broker->select_peers(constrained_at(now), 4);
  ASSERT_FALSE(ranked.empty());
  for (const PeerId peer : ranked) EXPECT_NE(peer, bad);

  // And the all-quarantined degradation still answers under constraints.
  for (int i = 0; i < options.clients; ++i) {
    const PeerId peer = peer_of(NodeId(i + 2));
    for (int hit = 0; hit < 4; ++hit) world.broker->reputation().record_failure(peer, now);
  }
  EXPECT_TRUE(world.broker->select_peer(constrained_at(now)).valid());
}

}  // namespace
}  // namespace peerlab::overlay
