// Broker federation: JXTA-Overlay deployments run multiple brokers
// ("the main node was used as one of the brokers"). Clients register
// with their own broker; discovery queries that miss locally are
// forwarded one hop across the federation.

#include <gtest/gtest.h>

#include <optional>

#include "peerlab/common/check.hpp"
#include "peerlab/planetlab/deployment.hpp"

namespace peerlab::overlay {
namespace {

planetlab::DeploymentOptions two_brokers() {
  planetlab::DeploymentOptions opts;
  opts.brokers = 2;
  return opts;
}

TEST(Federation, TwoBrokerDeploymentBootsAndPartitionsClients) {
  sim::Simulator sim(1);
  planetlab::Deployment dep(sim, two_brokers());
  EXPECT_EQ(dep.broker_count(), 2u);
  dep.boot();
  const auto first = dep.broker_at(0).registered_clients().size();
  const auto second = dep.broker_at(1).registered_clients().size();
  EXPECT_EQ(first + second, 8u);
  EXPECT_EQ(first, 4u);  // round-robin split
  EXPECT_EQ(second, 4u);
  EXPECT_EQ(dep.broker_at(0).peer_brokers().size(), 1u);
  EXPECT_EQ(dep.broker_at(1).peer_brokers().size(), 1u);
}

TEST(Federation, DiscoveryCrossesBrokers) {
  sim::Simulator sim(2);
  planetlab::Deployment dep(sim, two_brokers());
  dep.boot();
  // SC1 (broker 0's client) publishes content; SC2 (broker 1's client,
  // round-robin) must find it through federation.
  ASSERT_NE(dep.sc(1).broker_node(), dep.sc(2).broker_node());
  Primitives alice(dep.sc(1));
  Primitives bob(dep.sc(2));
  alice.share_content("exam-answers.pdf", megabytes(1.0));
  sim.run_until(sim.now() + 5.0);

  std::optional<std::vector<jxta::Advertisement>> found;
  bob.discover_content("exam-answers.pdf", [&](std::vector<jxta::Advertisement> advs) {
    found = std::move(advs);
  });
  sim.run_until(sim.now() + 30.0);
  ASSERT_TRUE(found.has_value());
  ASSERT_EQ(found->size(), 1u);
  EXPECT_EQ((*found)[0].name, "exam-answers.pdf");
  EXPECT_GT(dep.broker_at(1).federated_queries(), 0u);
}

TEST(Federation, LocalHitsDoNotFanOut) {
  sim::Simulator sim(3);
  planetlab::Deployment dep(sim, two_brokers());
  dep.boot();
  // Both publisher and seeker live on broker 0 (SC1 and SC3).
  ASSERT_EQ(dep.sc(1).broker_node(), dep.sc(3).broker_node());
  Primitives alice(dep.sc(1));
  Primitives carol(dep.sc(3));
  alice.share_content("local-notes.txt", kilobytes(10.0));
  sim.run_until(sim.now() + 5.0);

  const auto federated_before = dep.broker_at(0).federated_queries();
  std::optional<std::vector<jxta::Advertisement>> found;
  carol.discover_content("local-notes.txt", [&](std::vector<jxta::Advertisement> advs) {
    found = std::move(advs);
  });
  sim.run_until(sim.now() + 30.0);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->size(), 1u);
  EXPECT_EQ(dep.broker_at(0).federated_queries(), federated_before);
}

TEST(Federation, MissEverywhereReturnsEmptyWithoutLooping) {
  sim::Simulator sim(4);
  planetlab::Deployment dep(sim, two_brokers());
  dep.boot();
  Primitives bob(dep.sc(2));
  std::optional<std::vector<jxta::Advertisement>> found;
  bob.discover_content("does-not-exist.bin", [&](std::vector<jxta::Advertisement> advs) {
    found = std::move(advs);
  });
  sim.run_until(sim.now() + 60.0);
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(found->empty());
}

TEST(Federation, ThreeBrokersFederateFully) {
  sim::Simulator sim(5);
  planetlab::DeploymentOptions opts;
  opts.brokers = 3;
  planetlab::Deployment dep(sim, opts);
  dep.boot();
  EXPECT_EQ(dep.broker_count(), 3u);
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(dep.broker_at(b).peer_brokers().size(), 2u);
  }
  // A publish at any broker is discoverable from any other broker.
  Primitives source(dep.sc(3));
  source.share_content("everywhere.dat", megabytes(2.0));
  sim.run_until(sim.now() + 5.0);
  int found_count = 0;
  for (const int seeker : {1, 2}) {
    Primitives api(dep.sc(seeker));
    api.discover_content("everywhere.dat", [&](std::vector<jxta::Advertisement> advs) {
      found_count += advs.empty() ? 0 : 1;
    });
  }
  sim.run_until(sim.now() + 60.0);
  EXPECT_EQ(found_count, 2);
}

TEST(Federation, SelectionStaysPerBroker) {
  sim::Simulator sim(6);
  planetlab::Deployment dep(sim, two_brokers());
  dep.boot();
  // Each broker only offers its own edge peers.
  core::SelectionContext ctx;
  const auto from_first = dep.broker_at(0).select_peers(ctx, 99);
  const auto from_second = dep.broker_at(1).select_peers(ctx, 99);
  EXPECT_EQ(from_first.size(), 4u);
  EXPECT_EQ(from_second.size(), 4u);
  for (const auto peer : from_first) {
    EXPECT_EQ(std::count(from_second.begin(), from_second.end(), peer), 0);
  }
}

TEST(Federation, FederateWithValidation) {
  sim::Simulator sim(7);
  planetlab::Deployment dep(sim);
  EXPECT_THROW(dep.broker().federate_with(dep.broker().node()), InvariantError);
  EXPECT_THROW(dep.broker().federate_with(NodeId{}), InvariantError);
  // Idempotent.
  dep.broker().federate_with(NodeId(3));
  dep.broker().federate_with(NodeId(3));
  EXPECT_EQ(dep.broker().peer_brokers().size(), 1u);
}

}  // namespace
}  // namespace peerlab::overlay
