#include "peerlab/overlay/task_service.hpp"

#include <gtest/gtest.h>

#include "overlay_world.hpp"

namespace peerlab::overlay {
namespace {

using testing::OverlayWorld;
using testing::WorldOptions;

TEST(TaskService, SubmitExecuteAndReturnResult) {
  OverlayWorld w;
  w.boot();
  std::optional<TaskOutcome> outcome;
  TaskSubmission sub;
  sub.executor = PeerId(3);
  sub.work = 20.0;  // 20 Gcycles at 1.1 GHz -> ~18 s
  w.client(0).task_service().submit(sub, [&](const TaskOutcome& o) { outcome = o; });
  w.sim.run_until(w.sim.now() + 120.0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->accepted);
  EXPECT_TRUE(outcome->ok);
  EXPECT_GT(outcome->turnaround(), 15.0);
  EXPECT_EQ(w.client(1).task_service().offers_received(), 1u);
  EXPECT_EQ(w.client(1).task_service().offers_accepted(), 1u);
  EXPECT_EQ(w.client(1).task_service().results_sent(), 1u);
  EXPECT_EQ(w.client(1).executor().completed(), 1u);
}

TEST(TaskService, ExecutionRecordsReachBrokerHistory) {
  OverlayWorld w;
  w.boot();
  TaskSubmission sub;
  sub.executor = PeerId(3);
  sub.work = 11.0;
  std::optional<TaskOutcome> outcome;
  w.client(0).task_service().submit(sub, [&](const TaskOutcome& o) { outcome = o; });
  w.sim.run_until(w.sim.now() + 120.0);
  ASSERT_TRUE(outcome && outcome->ok);
  // Executor reported its execution; submitter reported acceptance.
  ASSERT_TRUE(w.broker->history().mean_execution_time(PeerId(3)).has_value());
  EXPECT_NEAR(*w.broker->history().mean_execution_time(PeerId(3)), 10.0, 0.5);
  const auto& stats = w.broker->statistics_for(PeerId(3));
  EXPECT_DOUBLE_EQ(stats.value(stats::Criterion::kTaskAcceptTotal, w.sim.now()), 100.0);
  EXPECT_DOUBLE_EQ(stats.value(stats::Criterion::kTaskExecSuccessTotal, w.sim.now()), 100.0);
}

TEST(TaskService, InputFileIsShippedBeforeExecution) {
  OverlayWorld w;
  w.boot();
  TaskSubmission sub;
  sub.executor = PeerId(3);
  sub.work = 5.0;
  sub.input_size = megabytes(2.0);
  sub.input_parts = 4;
  std::optional<TaskOutcome> outcome;
  w.client(0).task_service().submit(sub, [&](const TaskOutcome& o) { outcome = o; });
  w.sim.run_until(w.sim.now() + 300.0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok);
  // Input transfer took real time (2 MB at 8 Mbit/s ~ 2 s + protocol).
  EXPECT_GT(outcome->input_transfer_time(), 2.0);
  EXPECT_GT(outcome->turnaround(), outcome->input_transfer_time());
  EXPECT_EQ(w.client(1).files().transfer_peer().parts_received(), 4u);
}

TEST(TaskService, FullQueueRejectsAndSubmitterLearns) {
  WorldOptions opts;
  opts.client_config.executor.queue_capacity = 1;
  OverlayWorld w(opts);
  w.boot();
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 4; ++i) {
    TaskSubmission sub;
    sub.executor = PeerId(3);
    sub.work = 500.0;  // long tasks so the queue stays full
    w.client(0).task_service().submit(sub, [&](const TaskOutcome& o) {
      (o.accepted ? accepted : rejected)++;
    });
  }
  w.sim.run_until(w.sim.now() + 50.0);
  EXPECT_GE(rejected, 1);
  const auto& stats = w.broker->statistics_for(PeerId(3));
  EXPECT_LT(stats.value(stats::Criterion::kTaskAcceptTotal, w.sim.now()), 100.0);
}

TEST(TaskService, UnreachableExecutorFailsTheSubmission) {
  OverlayWorld w;
  w.boot();
  w.clients[1].reset();  // peer software gone from node 3
  TaskSubmission sub;
  sub.executor = PeerId(3);
  sub.work = 5.0;
  std::optional<TaskOutcome> outcome;
  w.client(0).task_service().submit(sub, [&](const TaskOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->accepted);
  EXPECT_FALSE(outcome->ok);
}

TEST(TaskService, SelfSubmissionIsRejected) {
  OverlayWorld w;
  w.boot();
  TaskSubmission sub;
  sub.executor = PeerId(2);  // client 0 itself
  sub.work = 5.0;
  EXPECT_THROW(w.client(0).task_service().submit(sub, [](const TaskOutcome&) {}),
               InvariantError);
}

TEST(TaskService, ConcurrentSubmissionsToDifferentPeers) {
  OverlayWorld w;
  w.boot();
  int finished = 0;
  for (const auto dst : {PeerId(3), PeerId(4)}) {
    TaskSubmission sub;
    sub.executor = dst;
    sub.work = 10.0;
    w.client(0).task_service().submit(sub, [&](const TaskOutcome& o) {
      EXPECT_TRUE(o.ok);
      ++finished;
    });
  }
  w.sim.run_until(w.sim.now() + 120.0);
  EXPECT_EQ(finished, 2);
}

}  // namespace
}  // namespace peerlab::overlay
