#include "peerlab/overlay/broker.hpp"

#include <gtest/gtest.h>

#include "overlay_world.hpp"
#include "peerlab/core/economic.hpp"

namespace peerlab::overlay {
namespace {

using testing::OverlayWorld;
using testing::WorldOptions;

TEST(Broker, HeartbeatsRegisterClients) {
  OverlayWorld w;
  EXPECT_TRUE(w.broker->registered_clients().empty());
  w.boot();
  const auto registered = w.broker->registered_clients();
  ASSERT_EQ(registered.size(), 3u);
  EXPECT_EQ(registered[0], PeerId(2));
  EXPECT_EQ(registered[2], PeerId(4));
  for (const auto peer : registered) {
    EXPECT_TRUE(w.broker->online(peer));
    const auto* record = w.broker->client(peer);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->node, node_of(peer));
    EXPECT_TRUE(record->idle);
    EXPECT_EQ(record->backlog, 0);
  }
  EXPECT_GE(w.broker->heartbeats_received(), 3u);
}

TEST(Broker, SilentClientGoesOffline) {
  WorldOptions opts;
  opts.client_config.heartbeat_interval = 10.0;
  opts.broker_config.heartbeat_interval = 10.0;
  OverlayWorld w(opts);
  w.boot();
  EXPECT_TRUE(w.broker->online(PeerId(2)));
  w.client(0).stop();
  // 3.5 missed intervals of 10 s -> offline after ~36 s of silence.
  w.sim.run_until(w.sim.now() + 60.0);
  EXPECT_FALSE(w.broker->online(PeerId(2)));
  EXPECT_TRUE(w.broker->online(PeerId(3)));
}

TEST(Broker, RestartedClientComesBackOnline) {
  WorldOptions opts;
  opts.client_config.heartbeat_interval = 10.0;
  opts.broker_config.heartbeat_interval = 10.0;
  OverlayWorld w(opts);
  w.boot();
  w.client(0).stop();
  w.sim.run_until(100.0);
  EXPECT_FALSE(w.broker->online(PeerId(2)));
  w.client(0).start();
  w.sim.run_until(101.0);
  EXPECT_TRUE(w.broker->online(PeerId(2)));
}

TEST(Broker, SnapshotsCarryProfileAndDynamicState) {
  OverlayWorld w;
  w.boot();
  const auto snapshots = w.broker->snapshot_group();
  ASSERT_EQ(snapshots.size(), 3u);
  const auto& first = snapshots.front();
  EXPECT_EQ(first.peer, PeerId(2));
  EXPECT_EQ(first.hostname, "sc1.example");
  EXPECT_DOUBLE_EQ(first.cpu_ghz, 1.0);
  EXPECT_TRUE(first.online);
  EXPECT_TRUE(first.idle);
  EXPECT_EQ(first.history, &w.broker->history());
  ASSERT_NE(first.statistics, nullptr);  // heartbeat reports queue samples
}

TEST(Broker, AppliedStatsFlowIntoSnapshots) {
  OverlayWorld w;
  w.boot();
  StatsDelta delta;
  delta.subject = PeerId(2);
  delta.msg_ok = 3;
  delta.msg_fail = 1;
  delta.file_done = 2;
  w.broker->apply_stats(delta);
  const auto& stats = w.broker->statistics_for(PeerId(2));
  EXPECT_DOUBLE_EQ(stats.value(stats::Criterion::kMsgSuccessTotal, w.sim.now()), 75.0);
  EXPECT_DOUBLE_EQ(stats.value(stats::Criterion::kFileSentTotal, w.sim.now()), 100.0);
}

TEST(Broker, StatsReportsTravelOverTheWire) {
  OverlayWorld w;
  w.boot();
  StatsDelta delta;
  delta.subject = PeerId(3);
  delta.msg_ok = 1;
  delta.response_times.push_back(0.25);
  w.client(0).report(delta);
  w.sim.run_until(w.sim.now() + 5.0);
  EXPECT_GT(w.broker->reports_applied(), 0u);
  ASSERT_TRUE(w.broker->history().mean_response_time(PeerId(3)).has_value());
  EXPECT_DOUBLE_EQ(*w.broker->history().mean_response_time(PeerId(3)), 0.25);
}

TEST(Broker, DefaultModelIsBlind) {
  OverlayWorld w;
  EXPECT_EQ(w.broker->selection_model().name(), "blind");
}

TEST(Broker, SelectionModelIsPluggable) {
  OverlayWorld w;
  w.boot();
  w.broker->set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
  EXPECT_EQ(w.broker->selection_model().name(), "economic");
  core::SelectionContext ctx;
  ctx.now = w.sim.now();
  const PeerId chosen = w.broker->select_peer(ctx);
  EXPECT_TRUE(chosen.valid());
}

TEST(Broker, LocalSelectKReturnsDistinctPeers) {
  OverlayWorld w;
  w.boot();
  core::SelectionContext ctx;
  const auto two = w.broker->select_peers(ctx, 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_NE(two[0], two[1]);
  const auto all = w.broker->select_peers(ctx, 99);
  EXPECT_EQ(all.size(), 3u);
}

TEST(Broker, WireSelectionReachesClients) {
  OverlayWorld w;
  w.boot();
  std::optional<std::vector<PeerId>> result;
  core::SelectionContext ctx;
  ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
  ctx.payload_size = megabytes(10.0);
  w.client(0).request_selection(ctx, 2, [&](std::vector<PeerId> peers) {
    result = std::move(peers);
  });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size(), 2u);
  EXPECT_EQ(w.broker->selections_served(), 1u);
}

TEST(Broker, WireSelectionFailsCleanlyWithoutBroker) {
  OverlayWorld w;
  w.boot();
  w.broker.reset();
  std::optional<std::vector<PeerId>> result;
  core::SelectionContext ctx;
  w.client(0).request_selection(ctx, 1, [&](std::vector<PeerId> peers) {
    result = std::move(peers);
  });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->empty());
}

TEST(Broker, BusyClientIsReportedBusyViaHeartbeat) {
  WorldOptions opts;
  opts.client_config.heartbeat_interval = 5.0;
  OverlayWorld w(opts);
  w.boot();
  // Occupy client 0's executor with a long task.
  tasks::Task t;
  t.id = TaskId(999);
  t.owner = PeerId(2);
  t.work = 1000.0;  // ~1000 s at 1 GHz
  w.client(0).executor().submit(t, [](const tasks::ExecutionReport&) {});
  w.sim.run_until(w.sim.now() + 12.0);  // two heartbeats later
  const auto* record = w.broker->client(PeerId(2));
  ASSERT_NE(record, nullptr);
  EXPECT_FALSE(record->idle);
  EXPECT_EQ(record->backlog, 1);
}

TEST(Broker, BeginSessionResetsSessionScopedStats) {
  OverlayWorld w;
  w.boot();
  StatsDelta bad;
  bad.subject = PeerId(2);
  bad.msg_fail = 4;
  w.broker->apply_stats(bad);
  w.broker->begin_session();
  const auto& s = w.broker->statistics_for(PeerId(2));
  EXPECT_DOUBLE_EQ(s.value(stats::Criterion::kMsgSuccessSession, w.sim.now()), 100.0);
  EXPECT_DOUBLE_EQ(s.value(stats::Criterion::kMsgSuccessTotal, w.sim.now()), 0.0);
}

TEST(Broker, HostsRendezvousAndGroupRegistry) {
  OverlayWorld w;
  w.boot();
  // Client adverts reached the broker's rendezvous via heartbeats.
  jxta::AdvertisementQuery q;
  q.kind = jxta::AdvertisementKind::kPeer;
  EXPECT_EQ(w.broker->rendezvous().query(q).size(), 3u);
  // Group registry serves joins.
  const GroupId g = w.broker->groups().create("campus", w.broker->id());
  std::optional<bool> joined;
  w.client(1).membership().join(g, [&](bool ok, GroupId) { joined = ok; });
  w.sim.run_until(w.sim.now() + 5.0);
  ASSERT_TRUE(joined.has_value());
  EXPECT_TRUE(*joined);
  EXPECT_TRUE(w.broker->groups().is_member(g, PeerId(3)));
}

}  // namespace
}  // namespace peerlab::overlay
