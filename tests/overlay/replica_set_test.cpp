// ReplicaSet unit behaviour: the delta stream keeps a standby's
// applied sequence (and history) in step with the primary, claim-once
// tickets make retransmissions idempotent, anti-entropy snapshots heal
// deltas lost to downtime, a short primary blip does not trigger an
// election, and a scripted crash + restart of the primary (through the
// fault-plan path, as a deployment wires it) elects the standby and
// rejoins the old primary as a standby.

#include "peerlab/overlay/replica_set.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "peerlab/net/fault_plan.hpp"
#include "peerlab/planetlab/deployment.hpp"

namespace peerlab::overlay {
namespace {

struct ReplicaWorldOptions {
  int standbys = 1;
  double datagram_loss = 0.0;
  std::uint64_t seed = 1;
  ReplicaConfig config{};
};

/// Minimal replication testbed: brokers only (node 1 primary, nodes
/// 2.. standbys), no clients — deltas are injected straight through
/// BrokerPeer::apply_stats, which is exactly what the report path does.
struct ReplicaWorld {
  explicit ReplicaWorld(ReplicaWorldOptions options = {}) : sim(options.seed) {
    net::Topology topo(sim.rng().fork(1));
    for (int i = 0; i < 1 + options.standbys; ++i) {
      net::NodeProfile p;
      p.hostname = "broker" + std::to_string(i + 1) + ".example";
      p.control_delay_mean = 0.05;
      p.control_delay_sigma = 0.0;
      p.loss_per_megabyte = 0.0;
      topo.add_node(p);
    }
    net::NetworkConfig cfg;
    cfg.datagram_loss = options.datagram_loss;
    network.emplace(sim, std::move(topo), cfg);
    fabric.emplace(*network);
    for (int i = 0; i < 1 + options.standbys; ++i) {
      brokers.push_back(
          std::make_unique<BrokerPeer>(*fabric, NodeId(i + 1), directories));
    }
    replicas.emplace(*fabric, options.config);
    replicas->add_primary(*brokers.front());
    for (int i = 1; i < 1 + options.standbys; ++i) replicas->add_standby(*brokers[i]);
  }

  BrokerPeer& primary() { return *brokers.front(); }
  BrokerPeer& standby(int i) { return *brokers.at(static_cast<std::size_t>(i + 1)); }

  sim::Simulator sim;
  std::optional<net::Network> network;
  std::optional<transport::TransportFabric> fabric;
  OverlayDirectories directories;
  std::vector<std::unique_ptr<BrokerPeer>> brokers;
  std::optional<ReplicaSet> replicas;
};

StatsDelta transfer_delta(PeerId peer, std::uint64_t id) {
  StatsDelta d;
  d.subject = peer;
  d.file_done = 1;
  stats::TransferRecord rec;
  rec.transfer = TransferId(id);
  rec.peer = peer;
  rec.size = megabytes(1.0);
  rec.duration = 4.0;
  rec.petition_time = 0.1;
  rec.ok = true;
  d.transfer_records.push_back(rec);
  return d;
}

TEST(ReplicaSet, DeltaStreamAdvancesAppliedSeqAndHistory) {
  ReplicaWorld w;
  obs::MetricRegistry registry;
  w.replicas->attach_metrics(registry);
  w.replicas->start();

  w.primary().apply_stats(transfer_delta(PeerId(50), 1));
  w.sim.run();

  EXPECT_EQ(w.replicas->stream_seq(), 1u);
  EXPECT_EQ(w.replicas->applied_seq(w.standby(0).node()), 1u);
  EXPECT_EQ(w.replicas->deltas_streamed(), 1u);
  EXPECT_EQ(w.replicas->deltas_applied(), 1u);
  // The standby holds the replicated record and statistics, not cold state.
  const auto transfers = w.standby(0).history().transfers_for(PeerId(50));
  ASSERT_EQ(transfers.size(), 1u);
  EXPECT_EQ(transfers[0].size, megabytes(1.0));
  EXPECT_NE(w.standby(0).find_statistics(PeerId(50)), nullptr);
  // Replication did not inflate the standby's report counter (the
  // replicated-apply path is separate from the wire report path).
  EXPECT_EQ(w.standby(0).reports_applied(), 0u);
  // The attached instruments saw the same traffic as the getters.
  EXPECT_EQ(registry.find_counter("overlay.replica.deltas_streamed")->value(), 1u);
  EXPECT_EQ(registry.find_counter("overlay.replica.deltas_applied")->value(), 1u);
}

TEST(ReplicaSet, BurstOfDeltasIsFullyAppliedInOrder) {
  ReplicaWorld w;
  w.replicas->start();
  for (std::uint64_t i = 1; i <= 100; ++i) {
    w.primary().apply_stats(transfer_delta(PeerId(50), i));
  }
  w.sim.run();
  EXPECT_EQ(w.replicas->stream_seq(), 100u);
  EXPECT_EQ(w.replicas->applied_seq(w.standby(0).node()), 100u);
  EXPECT_EQ(w.standby(0).history().transfers_for(PeerId(50)).size(),
            w.primary().history().transfers_for(PeerId(50)).size());
}

TEST(ReplicaSet, LossyStreamNeverDuplicatesRecords) {
  // 25% datagram loss forces retransmissions on the delta channel. The
  // claim-once ticket store makes a retransmitted delta a no-op apply,
  // so the standby's record count must equal the applied-delta count
  // exactly — a duplicate apply would inflate it. Anti-entropy is
  // pushed out of the test window so only the delta stream is at work.
  ReplicaWorldOptions options;
  options.datagram_loss = 0.25;
  options.seed = 9;
  options.config.anti_entropy_interval = 1e9;
  options.config.delta_retry = transport::RetryPolicy{2.0, 2.0, 3};
  ReplicaWorld w(options);
  w.replicas->start();

  constexpr std::uint64_t kDeltas = 40;
  for (std::uint64_t i = 1; i <= kDeltas; ++i) {
    w.sim.schedule_at(5.0 * static_cast<double>(i), [&w, i] {
      w.primary().apply_stats(transfer_delta(PeerId(50), i));
    });
  }
  w.sim.run();

  EXPECT_EQ(w.replicas->stream_seq(), kDeltas);
  EXPECT_GE(w.replicas->deltas_applied(), kDeltas / 2);  // the stream mostly gets through
  EXPECT_EQ(w.standby(0).history().transfers_for(PeerId(50)).size(),
            w.replicas->deltas_applied());
}

TEST(ReplicaSet, SnapshotHealsStandbyDowntime) {
  ReplicaWorldOptions options;
  options.config.anti_entropy_interval = 30.0;
  options.config.delta_retry = transport::RetryPolicy{2.0, 2.0, 3};
  ReplicaWorld w(options);
  w.replicas->start();

  w.primary().apply_stats(transfer_delta(PeerId(50), 1));
  w.sim.run();
  ASSERT_EQ(w.replicas->applied_seq(w.standby(0).node()), 1u);

  // Standby down: deltas 2..5 exhaust their retries and are lost.
  const NodeId standby_node = w.standby(0).node();
  w.network->crash_node(standby_node);
  w.replicas->notify_crash(standby_node);
  for (std::uint64_t i = 2; i <= 5; ++i) {
    w.primary().apply_stats(transfer_delta(PeerId(50), i));
  }
  w.sim.run();
  EXPECT_EQ(w.replicas->stream_seq(), 5u);
  EXPECT_EQ(w.replicas->applied_seq(standby_node), 1u);

  // Restart: the rejoin snapshot catches the standby up immediately.
  w.network->restore_node(standby_node);
  w.replicas->notify_restart(standby_node);
  w.sim.run_until(w.sim.now() + 40.0);
  EXPECT_EQ(w.replicas->applied_seq(standby_node), 5u);
  EXPECT_GE(w.replicas->snapshots_applied(), 1u);
  EXPECT_EQ(w.replicas->rejoins(), 1u);
  EXPECT_EQ(w.standby(0).history().transfers_for(PeerId(50)).size(), 5u);
}

TEST(ReplicaSet, ShortPrimaryBlipDoesNotTriggerElection) {
  ReplicaWorld w;  // heartbeat 5 s, election after >15 s of silence
  w.replicas->start();
  w.sim.run_until(20.0);

  const NodeId primary_node = w.primary().node();
  w.network->crash_node(primary_node);
  w.replicas->notify_crash(primary_node);
  w.sim.run_until(w.sim.now() + 6.0);  // well under the detection threshold
  w.network->restore_node(primary_node);
  w.replicas->notify_restart(primary_node);
  w.sim.run_until(w.sim.now() + 40.0);

  EXPECT_EQ(w.replicas->elections(), 0u);
  EXPECT_TRUE(w.replicas->is_primary(primary_node));
  // The resumed primary still streams.
  w.primary().apply_stats(transfer_delta(PeerId(50), 1));
  w.sim.run();
  EXPECT_EQ(w.replicas->applied_seq(w.standby(0).node()), w.replicas->stream_seq());
}

TEST(ReplicaSet, ScriptedPrimaryCrashElectsStandbyAndRejoinsOldPrimary) {
  // The deployment-wired fault-plan path: a scripted crash of the
  // primary broker node elects the standby and re-homes the flock; the
  // scripted restart rejoins the old primary as a standby that is
  // caught up (via the join snapshot) on state it never saw.
  sim::Simulator sim(3);
  planetlab::DeploymentOptions options;
  options.standby_brokers = 1;
  planetlab::Deployment dep(sim, options);
  dep.boot();
  ASSERT_NE(dep.replicas(), nullptr);
  const NodeId old_primary = dep.broker().node();
  const NodeId standby_node = dep.standby_at(0).node();

  net::FaultPlan plan;
  plan.crash(sim.now() + 5.0, old_primary, 120.0);
  dep.install_faults(std::move(plan));

  sim.run_until(sim.now() + 60.0);
  EXPECT_EQ(dep.replicas()->elections(), 1u);
  EXPECT_TRUE(dep.replicas()->is_primary(standby_node));
  EXPECT_FALSE(dep.replicas()->is_primary(old_primary));
  EXPECT_EQ(dep.control().broker_node(), standby_node);

  // State only the new primary ever saw, applied while the old primary
  // is still down: the rejoin snapshot must carry it over.
  StatsDelta marker = transfer_delta(PeerId(77), 777);
  dep.standby_at(0).apply_stats(marker);

  sim.run_until(sim.now() + 150.0);  // past the scripted restart
  EXPECT_GE(dep.replicas()->rejoins(), 1u);
  EXPECT_FALSE(dep.replicas()->is_primary(old_primary));  // rejoined as standby
  EXPECT_TRUE(dep.replicas()->is_primary(standby_node));
  EXPECT_FALSE(dep.broker().history().transfers_for(PeerId(77)).empty());
}

}  // namespace
}  // namespace peerlab::overlay
