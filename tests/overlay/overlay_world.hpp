#pragma once

// Shared fixture: one broker + N clients on a clean (lossless,
// deterministic-control-delay) network. Individual tests override
// profiles where heterogeneity matters.

#include <memory>
#include <optional>
#include <vector>

#include "peerlab/overlay/broker.hpp"
#include "peerlab/overlay/client.hpp"
#include "peerlab/overlay/primitives.hpp"

namespace peerlab::overlay::testing {

struct WorldOptions {
  int clients = 3;
  double datagram_loss = 0.0;
  double loss_per_megabyte = 0.0;
  Seconds control_delay = 0.02;
  double control_sigma = 0.0;
  std::uint64_t seed = 1;
  ClientConfig client_config{};
  BrokerConfig broker_config{};
};

struct OverlayWorld {
  explicit OverlayWorld(WorldOptions options = {}) : sim(options.seed) {
    net::Topology topo(sim.rng().fork(1));
    net::NodeProfile broker_profile;
    broker_profile.hostname = "broker.nozomi.upc.edu";
    broker_profile.control_delay_mean = 0.01;
    broker_profile.control_delay_sigma = 0.0;
    broker_profile.loss_per_megabyte = 0.0;
    broker_profile.uplink_mbps = 100.0;
    broker_profile.downlink_mbps = 100.0;
    topo.add_node(broker_profile);
    for (int i = 0; i < options.clients; ++i) {
      net::NodeProfile p;
      p.hostname = "sc" + std::to_string(i + 1) + ".example";
      p.control_delay_mean = options.control_delay;
      p.control_delay_sigma = options.control_sigma;
      p.loss_per_megabyte = options.loss_per_megabyte;
      p.uplink_mbps = 8.0;
      p.downlink_mbps = 8.0;
      p.cpu_ghz = 1.0 + 0.1 * i;
      p.base_load = 0.0;
      p.load_jitter = 0.0;
      topo.add_node(p);
    }
    net::NetworkConfig cfg;
    cfg.datagram_loss = options.datagram_loss;
    network.emplace(sim, std::move(topo), cfg);
    fabric.emplace(*network);
    broker.emplace(*fabric, NodeId(1), directories, options.broker_config);
    for (int i = 0; i < options.clients; ++i) {
      clients.push_back(std::make_unique<ClientPeer>(*fabric, NodeId(i + 2), NodeId(1),
                                                     directories, options.client_config));
    }
  }

  /// Starts every client and runs the sim until `t` so heartbeats
  /// register everyone at the broker.
  void boot(Seconds t = 1.0) {
    for (auto& c : clients) c->start();
    sim.run_until(t);
  }

  ClientPeer& client(std::size_t i) { return *clients.at(i); }

  sim::Simulator sim;
  std::optional<net::Network> network;
  std::optional<transport::TransportFabric> fabric;
  OverlayDirectories directories;
  std::optional<BrokerPeer> broker;
  std::vector<std::unique_ptr<ClientPeer>> clients;
};

}  // namespace peerlab::overlay::testing
