#include "peerlab/overlay/messaging.hpp"

#include <gtest/gtest.h>

#include "overlay_world.hpp"

namespace peerlab::overlay {
namespace {

using testing::OverlayWorld;
using testing::WorldOptions;

TEST(Messaging, DeliversAndAcks) {
  OverlayWorld w;
  w.boot();
  std::optional<std::pair<PeerId, std::int64_t>> received;
  w.client(1).messaging().set_listener([&](PeerId from, std::int64_t tag) {
    received = {from, tag};
  });
  std::optional<bool> delivered;
  w.client(0).messaging().send(PeerId(3), 42, [&](bool ok, Seconds) { delivered = ok; });
  w.sim.run_until(w.sim.now() + 10.0);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->first, PeerId(2));
  EXPECT_EQ(received->second, 42);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_TRUE(*delivered);
  EXPECT_EQ(w.client(0).messaging().sent(), 1u);
  EXPECT_EQ(w.client(0).messaging().delivered(), 1u);
  EXPECT_EQ(w.client(1).messaging().received(), 1u);
}

TEST(Messaging, OutcomeFeedsBrokerMessageCriteria) {
  OverlayWorld w;
  w.boot();
  std::optional<bool> delivered;
  w.client(0).messaging().send(PeerId(3), 1, [&](bool ok, Seconds) { delivered = ok; });
  w.sim.run_until(w.sim.now() + 10.0);
  ASSERT_TRUE(delivered && *delivered);
  const auto& stats = w.broker->statistics_for(PeerId(3));
  EXPECT_DOUBLE_EQ(stats.value(stats::Criterion::kMsgSuccessTotal, w.sim.now()), 100.0);
}

TEST(Messaging, UnreachablePeerCountsAsFailure) {
  OverlayWorld w;
  w.boot();
  w.clients[1].reset();
  std::optional<bool> delivered;
  w.client(0).messaging().send(PeerId(3), 1, [&](bool ok, Seconds) { delivered = ok; });
  w.sim.run();
  ASSERT_TRUE(delivered.has_value());
  EXPECT_FALSE(*delivered);
  const auto& stats = w.broker->statistics_for(PeerId(3));
  EXPECT_DOUBLE_EQ(stats.value(stats::Criterion::kMsgSuccessTotal, w.sim.now()), 0.0);
}

TEST(Messaging, SurvivesModerateLoss) {
  WorldOptions opts;
  opts.datagram_loss = 0.25;
  opts.seed = 21;
  OverlayWorld w(opts);
  w.boot();
  int ok = 0;
  constexpr int kMessages = 30;
  for (int i = 0; i < kMessages; ++i) {
    w.sim.schedule(i * 30.0, [&] {
      w.client(0).messaging().send(PeerId(3), 7, [&](bool success, Seconds) {
        ok += success ? 1 : 0;
      });
    });
  }
  w.sim.run();
  EXPECT_GE(ok, kMessages * 3 / 4);
}

}  // namespace
}  // namespace peerlab::overlay
