#include "peerlab/overlay/primitives.hpp"

#include <gtest/gtest.h>

#include "overlay_world.hpp"
#include "peerlab/core/economic.hpp"

namespace peerlab::overlay {
namespace {

using testing::OverlayWorld;
using testing::WorldOptions;

TEST(Primitives, DiscoverPeersSeesTheGroup) {
  OverlayWorld w;
  w.boot();
  Primitives api(w.client(0));
  std::optional<std::vector<jxta::Advertisement>> peers;
  api.discover_peers([&](std::vector<jxta::Advertisement> advs) { peers = std::move(advs); });
  w.sim.run_until(w.sim.now() + 10.0);
  ASSERT_TRUE(peers.has_value());
  EXPECT_EQ(peers->size(), 3u);
  for (const auto& adv : *peers) {
    EXPECT_EQ(*adv.attribute("role"), "simpleclient");
    EXPECT_GT(adv.numeric_attribute("cpu_ghz", 0.0), 0.0);
  }
}

TEST(Primitives, ShareAndDiscoverContent) {
  OverlayWorld w;
  w.boot();
  Primitives alice(w.client(0));
  Primitives bob(w.client(1));
  alice.share_content("lecture-01.mp4", megabytes(700.0));
  std::optional<std::vector<jxta::Advertisement>> found;
  w.sim.schedule(1.0, [&] {
    bob.discover_content("lecture-01.mp4",
                         [&](std::vector<jxta::Advertisement> advs) { found = std::move(advs); });
  });
  w.sim.run_until(w.sim.now() + 10.0);
  ASSERT_TRUE(found.has_value());
  ASSERT_EQ(found->size(), 1u);
  EXPECT_EQ((*found)[0].home, w.client(0).node());
  EXPECT_DOUBLE_EQ((*found)[0].numeric_attribute("bytes", 0.0), 700e6);
}

TEST(Primitives, SelectPeersDelegatesToBrokerModel) {
  OverlayWorld w;
  w.boot();
  w.broker->set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
  Primitives api(w.client(0));
  core::SelectionContext ctx;
  ctx.purpose = core::SelectionContext::Purpose::kTaskExecution;
  ctx.work = 100.0;
  std::optional<std::vector<PeerId>> selected;
  api.select_peers(ctx, 1, [&](std::vector<PeerId> peers) { selected = std::move(peers); });
  w.sim.run_until(w.sim.now() + 10.0);
  ASSERT_TRUE(selected.has_value());
  ASSERT_EQ(selected->size(), 1u);
  // Economic + cpu tiebreak: the fastest idle peer (sc3, 1.2 GHz).
  EXPECT_EQ(selected->front(), PeerId(4));
}

TEST(Primitives, SendFileRoundTrip) {
  OverlayWorld w;
  w.boot();
  Primitives api(w.client(0));
  std::optional<transport::TransferResult> result;
  api.send_file(PeerId(3), megabytes(1.0), 4,
                [&](const transport::TransferResult& r) { result = r; });
  w.sim.run_until(w.sim.now() + 60.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(result->parts.size(), 4u);
}

TEST(Primitives, SubmitTaskAutoSelectsAndRuns) {
  OverlayWorld w;
  w.boot();
  w.broker->set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
  Primitives api(w.client(0));
  std::optional<TaskOutcome> outcome;
  api.submit_task_auto(/*work=*/10.0, /*input_size=*/0,
                       [&](const TaskOutcome& o) { outcome = o; });
  w.sim.run_until(w.sim.now() + 120.0);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->accepted);
  EXPECT_TRUE(outcome->ok);
  EXPECT_NE(outcome->executor, w.client(0).id());  // never self
}

TEST(Primitives, SubmitTaskAutoFailsWhenNoPeerEligible) {
  WorldOptions opts;
  opts.clients = 1;  // only the submitter itself registers
  OverlayWorld w(opts);
  w.boot();
  Primitives api(w.client(0));
  std::optional<TaskOutcome> outcome;
  api.submit_task_auto(10.0, 0, [&](const TaskOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->accepted);
}

TEST(Primitives, InstantMessagingAndGroups) {
  OverlayWorld w;
  w.boot();
  Primitives alice(w.client(0));
  Primitives bob(w.client(1));
  std::optional<std::int64_t> heard;
  bob.on_message([&](PeerId, std::int64_t tag) { heard = tag; });
  std::optional<bool> sent;
  alice.send_message(bob.self(), 99, [&](bool ok, Seconds) { sent = ok; });

  const GroupId g = w.broker->groups().create("study-group", w.broker->id());
  std::optional<bool> joined;
  alice.join_group(g, [&](bool ok, GroupId) { joined = ok; });
  w.sim.run_until(w.sim.now() + 10.0);
  EXPECT_TRUE(heard && *heard == 99);
  EXPECT_TRUE(sent && *sent);
  EXPECT_TRUE(joined && *joined);
  alice.leave_group(g);
  w.sim.run_until(w.sim.now() + 5.0);
  EXPECT_FALSE(w.broker->groups().is_member(g, alice.self()));
}

}  // namespace
}  // namespace peerlab::overlay
