// Broker-level selection equivalence under churn and adversarial
// stats interleavings, plus the failover-rebuild pin: a broker whose
// candidate index answered from incremental state must return exactly
// what the frozen scan reference computes from snapshot_group(), for
// all five models, across ≥ 24 seeds — and an index rebuilt from
// adopted (replicated) state must keep that property.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "core/selection_reference.hpp"
#include "overlay/overlay_world.hpp"
#include "peerlab/core/blind.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/hybrid.hpp"
#include "peerlab/core/user_preference.hpp"
#include "support/test_seed.hpp"

namespace peerlab::overlay {
namespace {

using testing::OverlayWorld;
using testing::WorldOptions;

constexpr int kSeeds = 24;
constexpr int kClients = 8;

enum class ModelChoice { kBlind, kEconomic, kEvaluator, kUserPreference, kHybrid };

struct RefSet {
  std::unique_ptr<peerlab::testing::ReferenceBlind> blind;
  std::unique_ptr<peerlab::testing::ReferenceEconomic> economic;
  std::unique_ptr<peerlab::testing::ReferenceEvaluator> evaluator;
  std::unique_ptr<peerlab::testing::ReferenceUserPreference> preference;
  std::unique_ptr<peerlab::testing::ReferenceHybrid> hybrid;
};

void install(ModelChoice choice, BrokerPeer& broker, RefSet& refs) {
  switch (choice) {
    case ModelChoice::kBlind:
      broker.set_selection_model(std::make_unique<core::BlindModel>());
      refs.blind = std::make_unique<peerlab::testing::ReferenceBlind>();
      break;
    case ModelChoice::kEconomic:
      broker.set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
      refs.economic = std::make_unique<peerlab::testing::ReferenceEconomic>();
      break;
    case ModelChoice::kEvaluator:
      broker.set_selection_model(
          std::make_unique<core::DataEvaluatorModel>(core::DataEvaluatorModel::same_priority()));
      refs.evaluator = std::make_unique<peerlab::testing::ReferenceEvaluator>(
          peerlab::testing::ReferenceEvaluator::same_priority());
      break;
    case ModelChoice::kUserPreference: {
      std::vector<PeerId> order;
      for (int i = kClients; i >= 1; --i) order.push_back(peer_of(NodeId(i + 1)));
      broker.set_selection_model(std::make_unique<core::UserPreferenceModel>(order));
      refs.preference = std::make_unique<peerlab::testing::ReferenceUserPreference>(order);
      break;
    }
    case ModelChoice::kHybrid:
      broker.set_selection_model(std::make_unique<core::HybridModel>());
      refs.hybrid = std::make_unique<peerlab::testing::ReferenceHybrid>();
      break;
  }
}

std::vector<PeerId> reference_select(ModelChoice choice, RefSet& refs,
                                     std::span<const core::PeerSnapshot> snaps,
                                     const core::SelectionContext& ctx, std::size_t k) {
  switch (choice) {
    case ModelChoice::kBlind:
      return peerlab::testing::ref_select_k(*refs.blind, snaps, ctx, k);
    case ModelChoice::kEconomic:
      return peerlab::testing::ref_select_k(*refs.economic, snaps, ctx, k);
    case ModelChoice::kEvaluator:
      return peerlab::testing::ref_select_k(*refs.evaluator, snaps, ctx, k);
    case ModelChoice::kUserPreference:
      return peerlab::testing::ref_select_k(*refs.preference, snaps, ctx, k);
    default:
      return peerlab::testing::ref_select_k(*refs.hybrid, snaps, ctx, k);
  }
}

/// Adversary-flavoured delta: failures, self-praise-looking bursts,
/// zero-work tasks, queue-sample spoofing. With defenses off the
/// broker applies it wholesale — the index must track it all the same.
StatsDelta fuzz_delta(std::mt19937_64& rng, PeerId subject, Seconds now) {
  StatsDelta delta;
  delta.subject = subject;
  delta.msg_ok = static_cast<int>(rng() % 4);
  delta.msg_fail = static_cast<int>(rng() % 3);
  delta.exec_ok = static_cast<int>(rng() % 3);
  delta.exec_fail = static_cast<int>(rng() % 2);
  delta.file_done = static_cast<int>(rng() % 2);
  delta.file_fail = static_cast<int>(rng() % 2);
  if (rng() % 2 == 0) delta.outbox_sample = static_cast<double>(rng() % 30);
  if (rng() % 2 == 0) delta.inbox_sample = static_cast<double>(rng() % 30);
  if (rng() % 2 == 0) delta.pending_transfers = static_cast<int>(rng() % 5);
  if (rng() % 3 == 0) {
    delta.response_times.push_back(0.01 + 0.005 * static_cast<double>(rng() % 200));
  }
  if (rng() % 3 == 0) {
    stats::TaskRecord record;
    record.task = TaskId(rng() % 512 + 1);
    record.peer = subject;
    record.submitted = now;
    record.started = now + 0.5;
    record.finished = now + 0.5 + 0.25 * static_cast<double>(rng() % 60 + 1);
    record.ok = (rng() % 3) != 0;
    record.work = 0.25 * static_cast<double>(rng() % 30 + 1);
    delta.task_records.push_back(record);
  }
  if (rng() % 3 == 0) {
    stats::TransferRecord record;
    record.transfer = TransferId(rng() % 512 + 1);
    record.peer = subject;
    record.size = static_cast<Bytes>(rng() % 2048 + 32) * 1024;
    record.duration = 0.25 + 0.05 * static_cast<double>(rng() % 200);
    record.petition_time = now;
    record.ok = (rng() % 4) != 0;
    delta.transfer_records.push_back(record);
  }
  return delta;
}

core::SelectionContext fuzz_context(std::mt19937_64& rng, Seconds now, bool allow_excludes) {
  core::SelectionContext ctx;
  ctx.now = now;
  if (rng() % 2 == 0) ctx.work = 0.5 * static_cast<double>(rng() % 30);
  if (rng() % 2 == 0) ctx.payload_size = static_cast<Bytes>(rng() % 4096) * 1024;
  if (allow_excludes && rng() % 3 == 0) {
    const int n = static_cast<int>(rng() % 4);
    for (int i = 0; i < n; ++i) {
      ctx.exclude.push_back(peer_of(NodeId(static_cast<std::uint64_t>(rng() % kClients) + 2)));
    }
  }
  return ctx;
}

void run_world(ModelChoice choice, std::uint64_t seed) {
  WorldOptions options;
  options.clients = kClients;
  options.seed = seed;
  OverlayWorld world(options);
  world.boot(2.0);
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);

  RefSet refs;
  install(choice, *world.broker, refs);
  ASSERT_TRUE(world.broker->index_active());

  const bool allow_excludes = choice != ModelChoice::kBlind;
  int compared = 0;
  Seconds t = world.sim.now();
  for (int step = 0; step < 120; ++step) {
    // Churn: stop/start a client so heartbeats lapse and peers fall
    // off the liveness horizon mid-run.
    if (rng() % 10 == 0) {
      auto& client = world.client(rng() % kClients);
      if (rng() % 2 == 0) {
        client.stop();
      } else {
        client.start();
      }
    }
    if (rng() % 2 == 0) {
      const PeerId subject = peer_of(NodeId(static_cast<std::uint64_t>(rng() % kClients) + 2));
      world.broker->apply_stats(fuzz_delta(rng, subject, world.sim.now()));
    }
    t += 5.0 + static_cast<double>(rng() % 40);
    world.sim.run_until(t);
    if (rng() % 2 == 0) {
      const auto ctx = fuzz_context(rng, world.sim.now(), allow_excludes);
      const std::size_t k = rng() % 4 + 1;
      const auto snaps = world.broker->snapshot_group();
      const auto got = world.broker->select_peers(ctx, k);
      const auto want = reference_select(choice, refs, snaps, ctx, k);
      ASSERT_EQ(got, want) << "seed=" << seed << " step=" << step
                           << " model=" << static_cast<int>(choice);
      ++compared;
    }
  }
  ASSERT_GT(compared, 10) << "seed=" << seed;
  // The petitions above must have been answered by the index, not by
  // silent fallback to the scan.
  EXPECT_GT(world.broker->candidate_index().fast_path_selections(), 0u) << "seed=" << seed;
  EXPECT_EQ(world.broker->candidate_index().scan_fallbacks(), 0u) << "seed=" << seed;
}

void run_model(ModelChoice choice) {
  const std::uint64_t base = peerlab::testing::test_seed();
  for (int i = 0; i < kSeeds; ++i) {
    run_world(choice, base + static_cast<std::uint64_t>(i));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(SelectionDifferential, BlindUnderChurn) { run_model(ModelChoice::kBlind); }
TEST(SelectionDifferential, EconomicUnderChurn) { run_model(ModelChoice::kEconomic); }
TEST(SelectionDifferential, EvaluatorUnderChurn) { run_model(ModelChoice::kEvaluator); }
TEST(SelectionDifferential, UserPreferenceUnderChurn) {
  run_model(ModelChoice::kUserPreference);
}
TEST(SelectionDifferential, HybridUnderChurn) { run_model(ModelChoice::kHybrid); }

/// Failover pin: a broker that adopts replicated state (fresh client
/// registry, statistics map and history store — every cached pointer
/// invalidated) rebuilds its index and keeps answering bit-identically.
TEST(SelectionDifferential, IndexSurvivesAdoptedState) {
  const std::uint64_t base = peerlab::testing::test_seed();
  for (const auto choice :
       {ModelChoice::kEconomic, ModelChoice::kEvaluator, ModelChoice::kHybrid}) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(choice) * 131;
    WorldOptions options;
    options.clients = kClients;
    options.seed = seed;
    OverlayWorld primary(options);
    primary.boot(2.0);
    std::mt19937_64 rng(seed);
    RefSet primary_refs;
    install(choice, *primary.broker, primary_refs);

    Seconds t = primary.sim.now();
    for (int step = 0; step < 40; ++step) {
      const PeerId subject = peer_of(NodeId(static_cast<std::uint64_t>(rng() % kClients) + 2));
      primary.broker->apply_stats(fuzz_delta(rng, subject, primary.sim.now()));
      t += 10.0;
      primary.sim.run_until(t);
      if (step % 4 == 0) {
        // Exercise the primary's index so the exported state reflects
        // post-selection (window-evicted) statistics.
        const auto ctx = fuzz_context(rng, primary.sim.now(), true);
        (void)primary.broker->select_peers(ctx, 2);
      }
    }

    // Standby world: identical topology, its own broker, no booted
    // clients — everything it knows arrives via adopt_state.
    OverlayWorld standby(options);
    RefSet standby_refs;
    install(choice, *standby.broker, standby_refs);
    standby.broker->adopt_state(primary.broker->export_state());

    const auto snaps = standby.broker->snapshot_group();
    ASSERT_FALSE(snaps.empty());
    for (int petition = 0; petition < 20; ++petition) {
      core::SelectionContext ctx = fuzz_context(rng, standby.sim.now(), true);
      const std::size_t k = rng() % 4 + 1;
      const auto got = standby.broker->select_peers(ctx, k);
      const auto want = reference_select(choice, standby_refs, snaps, ctx, k);
      ASSERT_EQ(got, want) << "seed=" << seed << " petition=" << petition
                           << " model=" << static_cast<int>(choice);
    }
    // The first post-adoption petition flushed a full rebuild, and the
    // answers above came from the rebuilt index.
    EXPECT_GE(standby.broker->candidate_index().rebuilds(), 1u);
    EXPECT_GT(standby.broker->candidate_index().fast_path_selections(), 0u);
  }
}

}  // namespace
}  // namespace peerlab::overlay
