// The broker's defended report/selection paths: self-praise is a
// detected lie whose outcome fields never pollute history, counterparty
// outcomes feed the reputation book, quarantined peers drop out of
// selection (with graceful fallback when nobody is left), and with
// defenses off every path is bit-identical to the pre-defense broker.

#include <gtest/gtest.h>

#include <algorithm>

#include "overlay_world.hpp"
#include "peerlab/core/snapshot.hpp"

namespace peerlab::overlay {
namespace {

using testing::OverlayWorld;
using testing::WorldOptions;

WorldOptions defended_options(int clients = 3) {
  WorldOptions opts;
  opts.clients = clients;
  opts.broker_config.reputation.enabled = true;
  opts.broker_config.reputation.decay_half_life = 0.0;  // deterministic scores
  return opts;
}

/// A self-report carrying the counterparty-only fields (the stats
/// liar's heartbeat payload).
StatsDelta self_praise(PeerId peer) {
  StatsDelta delta;
  delta.subject = peer;
  delta.file_done = 3;
  delta.response_times.push_back(0.01);
  stats::TransferRecord fake;
  fake.transfer = TransferId(999);
  fake.peer = peer;
  fake.size = megabytes(1.0);
  fake.duration = 0.01;
  fake.ok = true;
  delta.transfer_records.push_back(fake);
  return delta;
}

TEST(BrokerDefense, SelfPraiseIsCaughtAndNeverReachesHistory) {
  OverlayWorld w(defended_options());
  w.boot();
  const PeerId liar(2);
  w.broker->apply_stats(self_praise(liar), liar);

  EXPECT_EQ(w.broker->reputation().lies_recorded(), 1u);
  EXPECT_LT(w.broker->reputation().score(liar, w.sim.now()), 1.0);
  // The fabricated outcome fields were dropped before application: the
  // history estimators every selection model consults stay clean.
  EXPECT_TRUE(w.broker->history().transfers_for(liar).empty());
  EXPECT_FALSE(w.broker->history().mean_transfer_rate(liar).has_value());
  EXPECT_FALSE(w.broker->history().mean_response_time(liar).has_value());
}

TEST(BrokerDefense, SelfQueueSamplesAreNotLies) {
  OverlayWorld w(defended_options());
  w.boot();
  const PeerId honest(2);
  StatsDelta delta;
  delta.subject = honest;
  delta.outbox_sample = 4.0;
  delta.inbox_sample = 1.0;
  delta.pending_transfers = 2;
  w.broker->apply_stats(delta, honest);
  EXPECT_EQ(w.broker->reputation().lies_recorded(), 0u);
  EXPECT_DOUBLE_EQ(w.broker->reputation().score(honest, w.sim.now()), 1.0);
}

TEST(BrokerDefense, CounterpartyOutcomesFeedTheReputationBook) {
  OverlayWorld w(defended_options());
  w.boot();
  const PeerId reporter(2);
  const PeerId subject(3);

  StatsDelta failure;
  failure.subject = subject;
  failure.file_fail = 1;
  w.broker->apply_stats(failure, reporter);
  EXPECT_EQ(w.broker->reputation().failures_recorded(), 1u);
  const double penalized = w.broker->reputation().score(subject, w.sim.now());
  EXPECT_DOUBLE_EQ(penalized,
                   1.0 - w.broker->reputation().config().failure_penalty);
  // ... and the defended snapshot carries the score into ranking.
  const auto snapshots = w.broker->snapshot_group();
  const auto it = std::find_if(snapshots.begin(), snapshots.end(),
                               [&](const auto& s) { return s.peer == subject; });
  ASSERT_NE(it, snapshots.end());
  EXPECT_DOUBLE_EQ(it->reputation, penalized);

  // Counterparty-attributed history is trusted and applied.
  StatsDelta success;
  success.subject = subject;
  success.exec_ok = 1;
  stats::TransferRecord real;
  real.transfer = TransferId(7);
  real.peer = subject;
  real.size = megabytes(2.0);
  real.duration = 2.0;
  real.ok = true;
  success.transfer_records.push_back(real);
  w.broker->apply_stats(success, reporter);
  EXPECT_GT(w.broker->reputation().successes_recorded(), 0u);
  EXPECT_EQ(w.broker->history().transfers_for(subject).size(), 1u);
  EXPECT_EQ(w.broker->reputation().lies_recorded(), 0u);
}

TEST(BrokerDefense, QuarantinedPeersDropOutOfSelection) {
  OverlayWorld w(defended_options(3));  // peers 2, 3, 4
  w.boot();
  const PeerId leech(3);
  w.broker->reputation().record_lie(leech, w.sim.now());
  w.broker->reputation().record_lie(leech, w.sim.now());  // 0.2 < 0.3
  ASSERT_TRUE(w.broker->reputation().quarantined(leech, w.sim.now()));

  core::SelectionContext ctx;
  ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
  const auto selected = w.broker->select_peers(ctx, 3);
  EXPECT_EQ(selected.size(), 2u);
  EXPECT_EQ(std::count(selected.begin(), selected.end(), leech), 0);
  EXPECT_NE(w.broker->select_peer(ctx), leech);
}

TEST(BrokerDefense, AllPeersQuarantinedFallsBackGracefully) {
  OverlayWorld w(defended_options(2));  // peers 2, 3
  w.boot();
  for (const auto peer : {PeerId(2), PeerId(3)}) {
    w.broker->reputation().record_lie(peer, w.sim.now());
    w.broker->reputation().record_lie(peer, w.sim.now());
    ASSERT_TRUE(w.broker->reputation().quarantined(peer, w.sim.now()));
  }
  // A distrusted peer beats none: the quarantine is lifted for the
  // decision instead of returning an empty selection.
  core::SelectionContext ctx;
  ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
  EXPECT_EQ(w.broker->select_peers(ctx, 2).size(), 2u);
  EXPECT_TRUE(w.broker->select_peer(ctx).valid());
  // An explicit caller exclude survives the fallback untouched.
  ctx.exclude.push_back(PeerId(2));
  const auto selected = w.broker->select_peers(ctx, 2);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], PeerId(3));
}

TEST(BrokerDefense, DisabledDefensesTrustEveryReportWholesale) {
  OverlayWorld w;  // defaults: reputation.enabled == false
  w.boot();
  ASSERT_FALSE(w.broker->defenses_enabled());
  const PeerId liar(2);
  w.broker->apply_stats(self_praise(liar), liar);
  // No vetting, no scoring: pre-defense behaviour bit-for-bit.
  EXPECT_EQ(w.broker->reputation().lies_recorded(), 0u);
  EXPECT_EQ(w.broker->history().transfers_for(liar).size(), 1u);
  EXPECT_TRUE(w.broker->history().mean_response_time(liar).has_value());
  const auto snapshots = w.broker->snapshot_group();
  for (const auto& s : snapshots) EXPECT_DOUBLE_EQ(s.reputation, 1.0);
}

}  // namespace
}  // namespace peerlab::overlay
