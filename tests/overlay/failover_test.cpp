// Churn-facing overlay behaviour: failed distribution shares re-home
// to broker-selected replacements, failure reasons propagate, client
// requests ride out a bounded broker outage, and crashed clients
// re-register after restart.

#include <gtest/gtest.h>

#include "overlay_world.hpp"
#include "peerlab/common/check.hpp"
#include "peerlab/net/fault_plan.hpp"

namespace peerlab::overlay {
namespace {

using testing::OverlayWorld;
using testing::WorldOptions;

/// Churn-tuned transfer knobs: fail fast so the test exercises the
/// failover machinery, not the full PlanetLab patience.
transport::FileTransferConfig churn_cfg() {
  transport::FileTransferConfig cfg;
  cfg.petition_retry.initial_timeout = 5.0;
  cfg.petition_retry.max_attempts = 3;
  cfg.confirm_timeout = 10.0;
  cfg.max_part_attempts = 3;
  return cfg;
}

DistributionOptions fast_failover() {
  DistributionOptions options;
  options.max_failovers_per_share = 2;
  options.backoff_initial = 1.0;
  options.backoff_factor = 2.0;
  options.backoff_cap = 8.0;
  return options;
}

struct FailoverOutcome {
  FileService::DistributionResult result;
  Seconds resolved_at = 0.0;
};

/// The seeded crash-mid-transfer scenario: client 0 scatters 8 MB over
/// peers 3 and 4; node 4 crashes while its share is on the wire and
/// never returns. The share must fail over to peer 5 (the only
/// candidate that is neither used nor the sender).
FailoverOutcome run_crash_mid_transfer(std::uint64_t seed) {
  WorldOptions opts;
  opts.clients = 4;  // peers 2..5 on nodes 2..5
  opts.seed = seed;
  OverlayWorld w(opts);
  w.boot();

  net::FaultPlan plan;
  plan.crash_forever(w.sim.now() + 2.0, NodeId(4));
  net::FaultInjector injector(*w.network, plan);

  FailoverOutcome out;
  bool done = false;
  w.client(0).files().distribute(
      megabytes(8.0), 4, {PeerId(3), PeerId(4)}, churn_cfg(),
      [&](const FileService::DistributionResult& r) {
        out.result = r;
        out.resolved_at = w.sim.now();
        done = true;
      },
      fast_failover());
  w.sim.run();
  PEERLAB_CHECK_MSG(done, "distribution never resolved");
  return out;
}

TEST(Failover, CrashMidTransferRehomesTheShareAndCompletes) {
  const FailoverOutcome out = run_crash_mid_transfer(11);
  const auto& result = out.result;
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.failovers, 1);
  ASSERT_EQ(result.shares.size(), 2u);
  // Shares are sorted by final peer: peer 3 kept its share, the share
  // of crashed peer 4 landed on peer 5.
  EXPECT_EQ(result.shares[0].peer, PeerId(3));
  EXPECT_EQ(result.shares[0].original, PeerId(3));
  EXPECT_EQ(result.shares[0].failovers, 0);
  EXPECT_TRUE(result.shares[0].complete);
  EXPECT_EQ(result.shares[1].peer, PeerId(5));
  EXPECT_EQ(result.shares[1].original, PeerId(4));
  EXPECT_EQ(result.shares[1].failovers, 1);
  EXPECT_TRUE(result.shares[1].complete);
  EXPECT_EQ(result.shares[1].bytes, megabytes(4.0));  // nothing silently lost
}

TEST(Failover, CrashMidTransferIsDeterministicPerSeed) {
  const FailoverOutcome a = run_crash_mid_transfer(11);
  const FailoverOutcome b = run_crash_mid_transfer(11);
  EXPECT_DOUBLE_EQ(a.resolved_at, b.resolved_at);
  EXPECT_DOUBLE_EQ(a.result.makespan(), b.result.makespan());
  ASSERT_EQ(a.result.shares.size(), b.result.shares.size());
  for (std::size_t i = 0; i < a.result.shares.size(); ++i) {
    EXPECT_EQ(a.result.shares[i].peer, b.result.shares[i].peer);
    EXPECT_DOUBLE_EQ(a.result.shares[i].transmission_time,
                     b.result.shares[i].transmission_time);
  }
}

TEST(Failover, DeadPeerAtPetitionTimeAlsoFailsOver) {
  WorldOptions opts;
  opts.clients = 3;
  OverlayWorld w(opts);
  w.boot();
  w.network->crash_node(NodeId(3));  // dead before the petition goes out

  std::optional<FileService::DistributionResult> result;
  w.client(0).files().distribute(megabytes(2.0), 2, {PeerId(3)}, churn_cfg(),
                                 [&](const FileService::DistributionResult& r) {
                                   result = r;
                                 },
                                 fast_failover());
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);
  ASSERT_EQ(result->shares.size(), 1u);
  EXPECT_EQ(result->shares[0].original, PeerId(3));
  EXPECT_EQ(result->shares[0].peer, PeerId(4));  // only remaining candidate
  EXPECT_EQ(result->failovers, 1);
}

TEST(Failover, ExhaustedFailoverBudgetReportsTheShareIncomplete) {
  WorldOptions opts;
  opts.clients = 2;
  OverlayWorld w(opts);
  w.boot();
  // The only other client is dead: the share fails and the broker has
  // no substitute to offer (the sender excludes itself).
  w.network->crash_node(NodeId(3));

  std::optional<FileService::DistributionResult> result;
  w.client(0).files().distribute(megabytes(1.0), 1, {PeerId(3)}, churn_cfg(),
                                 [&](const FileService::DistributionResult& r) {
                                   result = r;
                                 },
                                 fast_failover());
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete);  // reported, not silently lost
  ASSERT_EQ(result->shares.size(), 1u);
  EXPECT_FALSE(result->shares[0].complete);
}

TEST(Failover, PetitionFailureReasonPropagates) {
  OverlayWorld w;
  w.boot();
  w.network->crash_node(NodeId(3));
  std::optional<transport::TransferResult> result;
  auto cfg = churn_cfg();
  cfg.file_size = megabytes(1.0);
  cfg.parts = 1;
  w.client(0).files().send_file(PeerId(3), cfg,
                                [&](const transport::TransferResult& r) { result = r; });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete);
  EXPECT_STREQ(result->failure, "petition unanswered");
}

TEST(Failover, MidTransferCrashReportsPartRetransmissionLimit) {
  OverlayWorld w;
  w.boot();
  std::optional<transport::TransferResult> result;
  auto cfg = churn_cfg();
  cfg.file_size = megabytes(4.0);
  cfg.parts = 2;
  w.client(0).files().send_file(PeerId(3), cfg,
                                [&](const transport::TransferResult& r) { result = r; });
  w.sim.schedule(1.0, [&] { w.network->crash_node(NodeId(3)); });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete);
  EXPECT_STREQ(result->failure, "part retransmission limit");
}

TEST(Failover, SelectionRetriesExhaustAgainstADeadBroker) {
  OverlayWorld w;
  w.boot();
  w.network->crash_node(NodeId(1));  // broker gone for good
  std::optional<std::vector<PeerId>> selected;
  core::SelectionContext ctx;
  ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
  w.client(0).request_selection(ctx, 1,
                                [&](std::vector<PeerId> peers) { selected = peers; });
  w.sim.run();
  // The reliable channel retransmits a bounded number of times, then
  // reports failure: the callback fires empty instead of hanging.
  ASSERT_TRUE(selected.has_value());
  EXPECT_TRUE(selected->empty());
}

TEST(Failover, SelectionRidesOutABoundedBrokerOutage) {
  OverlayWorld w;
  w.boot();
  // Broker out for 60 s: shorter than the select channel's retry
  // budget, so the request succeeds on a later retransmission once
  // heartbeats have resumed and the broker sees the peers again.
  net::FaultPlan plan;
  plan.crash(w.sim.now() + 0.1, NodeId(1), 60.0);
  net::FaultInjector injector(*w.network, plan);

  std::optional<std::vector<PeerId>> selected;
  w.sim.schedule(1.0, [&] {
    core::SelectionContext ctx;
    ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
    w.client(0).request_selection(ctx, 1,
                                  [&](std::vector<PeerId> peers) { selected = peers; });
  });
  w.sim.run();
  ASSERT_TRUE(selected.has_value());
  ASSERT_FALSE(selected->empty());
  EXPECT_GT(w.sim.now(), 61.0);  // the answer arrived after the outage
}

TEST(Failover, CrashedClientReregistersAfterRestart) {
  WorldOptions opts;
  opts.client_config.heartbeat_interval = 10.0;
  opts.broker_config.heartbeat_interval = 10.0;
  opts.broker_config.offline_after_missed = 2.0;
  OverlayWorld w(opts);
  w.boot();
  ASSERT_TRUE(w.broker->online(PeerId(3)));

  // Crash node 3 for 60 s, wiring the overlay hooks the way
  // planetlab::Deployment::install_faults does.
  net::FaultPlan plan;
  plan.crash(w.sim.now() + 1.0, NodeId(3), 60.0);
  net::FaultInjector::Hooks hooks;
  hooks.on_crash = [&](NodeId) { w.client(1).stop(); };  // node 3 == client 1
  hooks.on_restart = [&](NodeId) { w.client(1).start(); };
  net::FaultInjector injector(*w.network, plan, std::move(hooks));

  // Mid-outage, past the aging window: the broker considers it gone.
  w.sim.run_until(w.sim.now() + 40.0);
  EXPECT_FALSE(w.broker->online(PeerId(3)));
  // After the restart the first heartbeat re-registers it.
  w.sim.run_until(w.sim.now() + 40.0);
  EXPECT_TRUE(w.broker->online(PeerId(3)));
}

TEST(Failover, CancelMarkersDoNotAccumulate) {
  OverlayWorld w;
  w.boot();
  FileService& files = w.client(0).files();
  // Cancelling a transfer that never existed leaves no marker behind.
  files.cancel(TransferId(1234));
  EXPECT_EQ(files.pending_cancellations(), 0u);

  auto cfg = churn_cfg();
  cfg.file_size = megabytes(4.0);
  cfg.parts = 2;
  bool finished = false;
  const TransferId id = files.send_file(
      PeerId(3), cfg, [&](const transport::TransferResult& r) {
        finished = true;
        EXPECT_FALSE(r.complete);
      });
  w.sim.run_until(w.sim.now() + 1.0);
  files.cancel(id);
  EXPECT_TRUE(finished);  // cancel resolves the transfer synchronously
  EXPECT_EQ(files.pending_cancellations(), 0u);
  // A second cancel of the now-finished transfer is a no-op.
  files.cancel(id);
  EXPECT_EQ(files.pending_cancellations(), 0u);
  w.sim.run();
  EXPECT_EQ(files.pending_cancellations(), 0u);
}

}  // namespace
}  // namespace peerlab::overlay
