#include <gtest/gtest.h>

#include "overlay_world.hpp"
#include "peerlab/common/check.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/overlay/primitives.hpp"

namespace peerlab::overlay {
namespace {

using testing::OverlayWorld;
using testing::WorldOptions;

transport::FileTransferConfig base_cfg() {
  transport::FileTransferConfig cfg;
  cfg.petition_retry.initial_timeout = 5.0;
  return cfg;
}

TEST(Distribution, SpreadsPartsRoundRobinAndConservesBytes) {
  WorldOptions opts;
  opts.clients = 3;
  OverlayWorld w(opts);
  w.boot();
  std::optional<FileService::DistributionResult> result;
  // 8 parts over 3 peers: shares of 3, 3, 2 parts.
  w.client(0).files().distribute(megabytes(8.0), 8, {PeerId(3), PeerId(4)}, base_cfg(),
                                 [&](const FileService::DistributionResult& r) {
                                   result = r;
                                 });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);
  ASSERT_EQ(result->shares.size(), 2u);
  Bytes total = 0;
  int parts = 0;
  for (const auto& share : result->shares) {
    EXPECT_TRUE(share.complete);
    total += share.bytes;
    parts += share.parts;
  }
  EXPECT_EQ(total, megabytes(8.0));
  EXPECT_EQ(parts, 8);
  EXPECT_EQ(result->shares[0].parts, 4);  // round-robin over 2 peers
  EXPECT_EQ(result->shares[1].parts, 4);
  EXPECT_GT(result->makespan(), 0.0);
}

TEST(Distribution, SinglePeerDegeneratesToPlainTransfer) {
  OverlayWorld w;
  w.boot();
  std::optional<FileService::DistributionResult> result;
  w.client(0).files().distribute(megabytes(2.0), 4, {PeerId(3)}, base_cfg(),
                                 [&](const FileService::DistributionResult& r) {
                                   result = r;
                                 });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);
  ASSERT_EQ(result->shares.size(), 1u);
  EXPECT_EQ(result->shares[0].parts, 4);
  EXPECT_EQ(result->shares[0].bytes, megabytes(2.0));
}

TEST(Distribution, ParallelSharesBeatSequentialDelivery) {
  // Scattering over two peers must finish faster than pushing the
  // whole file to one of them (distinct downlinks work in parallel).
  OverlayWorld w;
  w.boot();
  Seconds scattered = 0.0, single = 0.0;
  w.client(0).files().distribute(megabytes(4.0), 8, {PeerId(3), PeerId(4)}, base_cfg(),
                                 [&](const FileService::DistributionResult& r) {
                                   ASSERT_TRUE(r.complete);
                                   scattered = r.makespan();
                                 });
  w.sim.run();
  auto cfg = base_cfg();
  cfg.file_size = megabytes(4.0);
  cfg.parts = 8;
  w.client(0).files().send_file(PeerId(3), cfg, [&](const transport::TransferResult& r) {
    ASSERT_TRUE(r.complete);
    single = r.transmission_time();
  });
  w.sim.run();
  EXPECT_LT(scattered, single);
}

TEST(Distribution, PartialFailureIsReportedPerShare) {
  OverlayWorld w;
  w.boot();
  w.clients[1].reset();  // PeerId(3)'s software is gone
  auto cfg = base_cfg();
  cfg.petition_retry.max_attempts = 2;
  std::optional<FileService::DistributionResult> result;
  w.client(0).files().distribute(megabytes(2.0), 4, {PeerId(3), PeerId(4)}, cfg,
                                 [&](const FileService::DistributionResult& r) {
                                   result = r;
                                 });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete);
  ASSERT_EQ(result->shares.size(), 2u);
  EXPECT_FALSE(result->shares[0].complete);  // PeerId(3)
  EXPECT_TRUE(result->shares[1].complete);   // PeerId(4)
}

TEST(Distribution, Validation) {
  OverlayWorld w;
  w.boot();
  auto& files = w.client(0).files();
  EXPECT_THROW(files.distribute(0, 4, {PeerId(3)}, base_cfg(), [](const auto&) {}),
               InvariantError);
  EXPECT_THROW(files.distribute(megabytes(1.0), 4, {}, base_cfg(), [](const auto&) {}),
               InvariantError);
  EXPECT_THROW(files.distribute(megabytes(1.0), 4, {PeerId(3), PeerId(3)}, base_cfg(),
                                [](const auto&) {}),
               InvariantError);
}

TEST(Distribution, PrimitivesDistributeSelectsThenScatters) {
  OverlayWorld w;
  w.boot();
  w.broker->set_selection_model(std::make_unique<core::EconomicSchedulingModel>());
  Primitives api(w.client(0));
  std::optional<FileService::DistributionResult> result;
  api.distribute_file(megabytes(4.0), 4, [&](const FileService::DistributionResult& r) {
    result = r;
  });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);
  // Never distributes to itself.
  for (const auto& share : result->shares) {
    EXPECT_NE(share.peer, w.client(0).id());
  }
}

TEST(Distribution, PrimitivesDistributeFailsCleanlyWithoutCandidates) {
  WorldOptions opts;
  opts.clients = 1;
  OverlayWorld w(opts);
  w.boot();
  Primitives api(w.client(0));
  std::optional<FileService::DistributionResult> result;
  api.distribute_file(megabytes(1.0), 4, [&](const FileService::DistributionResult& r) {
    result = r;
  });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete);
  EXPECT_TRUE(result->shares.empty());
}

}  // namespace
}  // namespace peerlab::overlay
