#include "peerlab/overlay/group_report.hpp"

#include <gtest/gtest.h>

#include "overlay_world.hpp"
#include "peerlab/overlay/broker.hpp"

namespace peerlab::overlay {
namespace {

using testing::OverlayWorld;
using testing::WorldOptions;

TEST(GroupReport, FreshDeploymentReportsRegistry) {
  OverlayWorld w;
  w.boot();
  const GroupReport report = make_group_report(*w.broker);
  EXPECT_EQ(report.registered, 3u);
  EXPECT_EQ(report.online, 3u);
  EXPECT_EQ(report.broker_node, NodeId(1));
  EXPECT_GE(report.heartbeats, 3u);
  ASSERT_EQ(report.peers.size(), 3u);
  for (const auto& line : report.peers) {
    EXPECT_TRUE(line.online);
    EXPECT_TRUE(line.idle);
    EXPECT_EQ(line.backlog, 0);
    EXPECT_FALSE(line.hostname.empty());
  }
}

TEST(GroupReport, ReflectsActivityAndOutcomes) {
  OverlayWorld w;
  w.boot();
  // One transfer and one task, then report.
  transport::FileTransferConfig cfg;
  cfg.file_size = megabytes(1.0);
  cfg.parts = 2;
  w.client(0).files().send_file(PeerId(3), cfg, [](const transport::TransferResult&) {});
  TaskSubmission sub;
  sub.executor = PeerId(4);
  sub.work = 10.0;
  w.client(0).task_service().submit(sub, [](const TaskOutcome&) {});
  w.sim.run_until(w.sim.now() + 120.0);

  const GroupReport report = make_group_report(*w.broker);
  const auto* sc2 = &report.peers[1];  // PeerId(3)
  const auto* sc3 = &report.peers[2];  // PeerId(4)
  ASSERT_EQ(sc2->peer, PeerId(3));
  EXPECT_DOUBLE_EQ(sc2->file_sent_pct, 100.0);
  EXPECT_TRUE(sc2->mean_transfer_rate.has_value());
  ASSERT_EQ(sc3->peer, PeerId(4));
  EXPECT_DOUBLE_EQ(sc3->task_exec_pct, 100.0);
  EXPECT_TRUE(sc3->mean_execution_time.has_value());
}

TEST(GroupReport, MarksOfflinePeers) {
  WorldOptions opts;
  opts.client_config.heartbeat_interval = 10.0;
  opts.broker_config.heartbeat_interval = 10.0;
  OverlayWorld w(opts);
  w.boot();
  w.client(0).stop();
  w.sim.run_until(w.sim.now() + 60.0);
  const GroupReport report = make_group_report(*w.broker);
  EXPECT_EQ(report.registered, 3u);
  EXPECT_EQ(report.online, 2u);
  EXPECT_FALSE(report.peers[0].online);
}

TEST(GroupReport, RenderContainsEveryPeerAndHeader) {
  OverlayWorld w;
  w.boot();
  const std::string text = make_group_report(*w.broker).render();
  EXPECT_NE(text.find("group report"), std::string::npos);
  EXPECT_NE(text.find("heartbeats"), std::string::npos);
  EXPECT_NE(text.find("sc1.example"), std::string::npos);
  EXPECT_NE(text.find("sc3.example"), std::string::npos);
}

TEST(GroupReport, CountsGroups) {
  OverlayWorld w;
  w.boot();
  w.broker->groups().create("a", w.broker->id());
  w.broker->groups().create("b", w.broker->id());
  EXPECT_EQ(make_group_report(*w.broker).groups, 2u);
}

}  // namespace
}  // namespace peerlab::overlay
