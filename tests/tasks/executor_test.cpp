#include "peerlab/tasks/executor.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "peerlab/common/check.hpp"

namespace peerlab::tasks {
namespace {

struct World {
  explicit World(double base_load = 0.0, double jitter = 0.0, std::uint64_t seed = 1)
      : sim(seed) {
    net::NodeProfile profile;
    profile.hostname = "exec.example";
    profile.cpu_ghz = 2.0;
    profile.base_load = base_load;
    profile.load_jitter = jitter;
    node.emplace(NodeId(1), profile, sim.rng().fork(1));
  }
  sim::Simulator sim;
  std::optional<net::Node> node;
};

Task make_task(std::uint64_t id, GigaCycles work = 20.0) {
  Task t;
  t.id = TaskId(id);
  t.owner = PeerId(9);
  t.work = work;
  return t;
}

TEST(TaskExecutor, ExecutesAtEffectiveSpeed) {
  World w;  // 2 GHz, zero load -> 20 Gcycles in 10 s
  TaskExecutor exec(w.sim, *w.node, {});
  std::optional<ExecutionReport> report;
  EXPECT_TRUE(exec.submit(make_task(1), [&](const ExecutionReport& r) { report = r; }));
  w.sim.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->state, TaskState::kCompleted);
  EXPECT_NEAR(report->execution_time(), 10.0, 1e-9);
  EXPECT_NEAR(report->effective_speed, 2.0, 1e-9);
  EXPECT_EQ(exec.completed(), 1u);
}

TEST(TaskExecutor, LoadedNodeIsSlower) {
  World loaded(/*base_load=*/0.5);
  TaskExecutor exec(loaded.sim, *loaded.node, {});
  std::optional<ExecutionReport> report;
  exec.submit(make_task(1), [&](const ExecutionReport& r) { report = r; });
  loaded.sim.run();
  ASSERT_TRUE(report.has_value());
  // 2 GHz at 50% load = 1 GHz effective -> 20 s.
  EXPECT_NEAR(report->execution_time(), 20.0, 1e-9);
}

TEST(TaskExecutor, SingleSlotSerializesTasks) {
  World w;
  TaskExecutor exec(w.sim, *w.node, {});
  std::vector<ExecutionReport> reports;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    exec.submit(make_task(i), [&](const ExecutionReport& r) { reports.push_back(r); });
  }
  EXPECT_EQ(exec.backlog(), 3);
  w.sim.run();
  ASSERT_EQ(reports.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(reports[i].task.id, TaskId(i + 1));  // FIFO
    EXPECT_NEAR(reports[i].started_at, 10.0 * static_cast<double>(i), 1e-9);
    EXPECT_NEAR(reports[i].queueing_time(), 10.0 * static_cast<double>(i), 1e-9);
  }
  EXPECT_TRUE(exec.idle());
}

TEST(TaskExecutor, MultipleSlotsRunConcurrently) {
  World w;
  ExecutorConfig cfg;
  cfg.slots = 2;
  TaskExecutor exec(w.sim, *w.node, cfg);
  std::vector<Seconds> finishes;
  for (std::uint64_t i = 1; i <= 2; ++i) {
    exec.submit(make_task(i), [&](const ExecutionReport& r) { finishes.push_back(r.finished_at); });
  }
  EXPECT_EQ(exec.running(), 2);
  w.sim.run();
  ASSERT_EQ(finishes.size(), 2u);
  EXPECT_NEAR(finishes[0], 10.0, 1e-9);
  EXPECT_NEAR(finishes[1], 10.0, 1e-9);
}

TEST(TaskExecutor, FullQueueRejectsWithReport) {
  World w;
  ExecutorConfig cfg;
  cfg.queue_capacity = 2;
  TaskExecutor exec(w.sim, *w.node, cfg);
  std::vector<TaskState> states;
  // Slot takes 1; queue holds 2; fourth is rejected... note the first
  // submit moves straight from queue to the slot.
  for (std::uint64_t i = 1; i <= 4; ++i) {
    exec.submit(make_task(i), [&](const ExecutionReport& r) { states.push_back(r.state); });
  }
  ASSERT_EQ(states.size(), 1u);  // rejection reported immediately
  EXPECT_EQ(states[0], TaskState::kRejected);
  w.sim.run();
  ASSERT_EQ(states.size(), 4u);
  EXPECT_EQ(std::count(states.begin(), states.end(), TaskState::kCompleted), 3);
}

TEST(TaskExecutor, FailureRateProducesFailures) {
  World w(0.0, 0.0, /*seed=*/7);
  ExecutorConfig cfg;
  cfg.failure_rate = 0.4;
  cfg.queue_capacity = 512;
  TaskExecutor exec(w.sim, *w.node, cfg);
  int completed = 0, failed = 0;
  for (std::uint64_t i = 1; i <= 200; ++i) {
    exec.submit(make_task(i, 1.0), [&](const ExecutionReport& r) {
      (r.state == TaskState::kCompleted ? completed : failed)++;
    });
  }
  w.sim.run();
  EXPECT_EQ(completed + failed, 200);
  EXPECT_NEAR(static_cast<double>(failed) / 200.0, 0.4, 0.1);
  EXPECT_EQ(exec.failed(), static_cast<std::uint64_t>(failed));
}

TEST(TaskExecutor, CompletionCanResubmit) {
  World w;
  TaskExecutor exec(w.sim, *w.node, {});
  int executions = 0;
  std::function<void(const ExecutionReport&)> resubmit = [&](const ExecutionReport&) {
    if (++executions < 3) {
      exec.submit(make_task(100 + static_cast<std::uint64_t>(executions)), resubmit);
    }
  };
  exec.submit(make_task(1), resubmit);
  w.sim.run();
  EXPECT_EQ(executions, 3);
  EXPECT_NEAR(w.sim.now(), 30.0, 1e-9);
}

TEST(TaskExecutor, JitteredLoadVariesExecutionTimes) {
  World w(/*base_load=*/0.3, /*jitter=*/0.2, /*seed=*/3);
  ExecutorConfig cfg;
  cfg.queue_capacity = 64;
  TaskExecutor exec(w.sim, *w.node, cfg);
  std::vector<Seconds> times;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    exec.submit(make_task(i), [&](const ExecutionReport& r) {
      times.push_back(r.execution_time());
    });
  }
  w.sim.run();
  ASSERT_EQ(times.size(), 20u);
  const auto [lo, hi] = std::minmax_element(times.begin(), times.end());
  EXPECT_LT(*lo, *hi);  // not all identical
  // Load clamps at 0, so the best case equals the unloaded time.
  for (const auto t : times) EXPECT_GE(t, 10.0);
}

TEST(TaskExecutor, Validation) {
  World w;
  ExecutorConfig bad;
  bad.slots = 0;
  EXPECT_THROW(TaskExecutor(w.sim, *w.node, bad), InvariantError);
  bad = ExecutorConfig{};
  bad.failure_rate = 1.0;
  EXPECT_THROW(TaskExecutor(w.sim, *w.node, bad), InvariantError);

  TaskExecutor exec(w.sim, *w.node, {});
  Task zero = make_task(1, 0.0);
  EXPECT_THROW(exec.submit(zero, [](const ExecutionReport&) {}), InvariantError);
}

}  // namespace
}  // namespace peerlab::tasks
