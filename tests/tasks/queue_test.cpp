#include "peerlab/tasks/queue.hpp"

#include <gtest/gtest.h>

#include "peerlab/common/check.hpp"

namespace peerlab::tasks {
namespace {

Task make_task(std::uint64_t id) {
  Task t;
  t.id = TaskId(id);
  t.owner = PeerId(1);
  t.work = 10.0;
  return t;
}

TEST(TaskQueue, StartsEmpty) {
  TaskQueue q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(TaskQueue, FifoOrder) {
  TaskQueue q(4);
  EXPECT_TRUE(q.offer(make_task(1)));
  EXPECT_TRUE(q.offer(make_task(2)));
  EXPECT_TRUE(q.offer(make_task(3)));
  EXPECT_EQ(q.pop()->id, TaskId(1));
  EXPECT_EQ(q.pop()->id, TaskId(2));
  EXPECT_EQ(q.pop()->id, TaskId(3));
}

TEST(TaskQueue, RejectsWhenFull) {
  TaskQueue q(2);
  EXPECT_TRUE(q.offer(make_task(1)));
  EXPECT_TRUE(q.offer(make_task(2)));
  EXPECT_FALSE(q.offer(make_task(3)));
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.offered(), 3u);
  EXPECT_EQ(q.rejected(), 1u);
}

TEST(TaskQueue, AcceptsAgainAfterDrain) {
  TaskQueue q(1);
  EXPECT_TRUE(q.offer(make_task(1)));
  EXPECT_FALSE(q.offer(make_task(2)));
  (void)q.pop();
  EXPECT_TRUE(q.offer(make_task(3)));
}

TEST(TaskQueue, RejectsZeroCapacity) {
  EXPECT_THROW(TaskQueue(0), InvariantError);
}

TEST(TaskState, Names) {
  EXPECT_STREQ(to_string(TaskState::kQueued), "queued");
  EXPECT_STREQ(to_string(TaskState::kRunning), "running");
  EXPECT_STREQ(to_string(TaskState::kCompleted), "completed");
  EXPECT_STREQ(to_string(TaskState::kFailed), "failed");
  EXPECT_STREQ(to_string(TaskState::kRejected), "rejected");
}

}  // namespace
}  // namespace peerlab::tasks
