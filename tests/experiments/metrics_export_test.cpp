// The acceptance path for the observability subsystem: run the
// Figure 6 driver exactly as the bench binary does — registry attached
// through RunOptions — write the JSON export, and parse it back. Pins
// the contract consumers rely on: a flat "metrics" map holding
// per-model selection-latency histogram stats (p50/p99) and failover
// counters, aggregated across every world of the run.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "peerlab/experiments/figures.hpp"
#include "peerlab/obs/metrics.hpp"

namespace peerlab::experiments {
namespace {

/// Extracts the number following `"key": ` in the export. The format
/// is one `"name": value` pair per line under "metrics", so a literal
/// scan is a faithful parser for this fixture.
double metric_value(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto at = json.find(needle);
  EXPECT_NE(at, std::string::npos) << "export lacks " << key;
  if (at == std::string::npos) return -1.0;
  return std::stod(json.substr(at + needle.size()));
}

TEST(MetricsExport, Fig6EmitsPerModelHistogramsAndFailoverCounters) {
  RunOptions options;
  options.repetitions = 1;
  options.threads = 1;
  obs::MetricRegistry registry;
  options.metrics = &registry;

  const Fig6Result result = run_fig6_models(options);
  // The driver still returns its figures; metrics ride along.
  EXPECT_GT(result.four_parts[0].mean(), 0.0);

  const std::string path = ::testing::TempDir() + "/fig6_metrics.json";
  registry.write_json(path, "bench_fig6_models");
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string json = buffer.str();
  std::remove(path.c_str());

  EXPECT_NE(json.find("\"label\": \"bench_fig6_models\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": {"), std::string::npos);

  for (const char* model : kModelNames) {
    const std::string latency = std::string("overlay.selection.latency_s.") + model;
    // Each model ran two worlds (4 and 16 parts) with one selection
    // each, plus any failover re-petitions.
    EXPECT_GE(metric_value(json, latency + ".count"), 2.0) << model;
    const double p50 = metric_value(json, latency + ".p50");
    const double p99 = metric_value(json, latency + ".p99");
    EXPECT_GT(p50, 0.0) << model;
    EXPECT_GE(p99, p50) << model;

    // Failover counters exist per model (zero on clean runs) and the
    // instrument table declares them as counters.
    EXPECT_GE(metric_value(json, std::string("overlay.failovers.") + model), 0.0);
    EXPECT_GE(metric_value(json, std::string("overlay.backoff_retries.") + model), 0.0);
    EXPECT_NE(json.find(std::string("\"overlay.failovers.") + model +
                        "\": {\"kind\": \"counter\""),
              std::string::npos)
        << model;

    // The wire-level series aggregate across the model's worlds too.
    EXPECT_GT(metric_value(json, std::string("net.datagrams.sent.") + model), 0.0);
    EXPECT_GE(metric_value(json, std::string("overlay.selections_requested.") + model),
              2.0);
  }
}

}  // namespace
}  // namespace peerlab::experiments
