// Same-seed runs must produce byte-identical trace dumps: the tracing
// layer consumes no randomness and never perturbs event order, so the
// JSONL (which embeds seq numbers, span ids and %.9f timestamps) is a
// deterministic function of the seed. Fuzzed over 24 seeds mixing calm
// worlds with churn/broker-failover worlds, plus a figure-driver run
// through the RunOptions::trace_path plumbing.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "peerlab/experiments/figures.hpp"
#include "peerlab/net/fault_plan.hpp"
#include "peerlab/obs/trace.hpp"
#include "peerlab/obs/watchdog.hpp"
#include "peerlab/planetlab/deployment.hpp"

namespace peerlab::experiments {
namespace {

using obs::Watchdog;
using obs::trace::TraceRecorder;
using overlay::DistributionOptions;
using overlay::FileService;
using planetlab::Deployment;
using planetlab::DeploymentOptions;
using transport::FileTransferConfig;
using transport::TransferResult;

FileTransferConfig small_transfer(Bytes size, int parts) {
  FileTransferConfig cfg;
  cfg.file_size = size;
  cfg.parts = parts;
  cfg.petition_retry.initial_timeout = 15.0;
  cfg.petition_retry.backoff = 1.5;
  cfg.petition_retry.max_attempts = 4;
  cfg.confirm_timeout = 30.0;
  cfg.max_confirm_queries = 6;
  cfg.max_part_attempts = 6;
  return cfg;
}

/// One traced world: calm seeds run two serial transfers; churny seeds
/// (odd) add a standby broker, a 3-way distribution, and crash both the
/// first share holder and the primary broker mid-scatter, driving
/// share failover, re-homing and selection re-issue onto the chains.
std::string traced_run(std::uint64_t seed) {
  const bool churn = (seed % 2) == 1;
  sim::Simulator sim(seed);
  DeploymentOptions options;
  options.standby_brokers = churn ? 1 : 0;
  Deployment dep(sim, options);
  dep.boot();
  sim.run_until(sim.now() + 120.0);

  TraceRecorder rec(sim);
  Watchdog dog(rec);
  dep.attach_tracing(&rec);

  const int first = 1 + static_cast<int>(seed % 8);
  const int second = 1 + static_cast<int>((seed + 3) % 8);
  FileTransferConfig cfg = small_transfer(megabytes(4.0), 2);
  cfg.trace = rec.root();
  dep.control().files().send_file(dep.sc_peer(first), cfg, [](const TransferResult&) {});
  sim.run();
  cfg = small_transfer(megabytes(8.0), 4);
  cfg.trace = rec.root();
  dep.control().files().send_file(dep.sc_peer(second), cfg, [](const TransferResult&) {});
  sim.run();

  if (churn) {
    std::vector<PeerId> selected;
    core::SelectionContext ctx;
    ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
    ctx.payload_size = 8 * kMegabyte;
    ctx.now = sim.now();
    dep.control().request_selection(
        ctx, 3, [&](std::vector<PeerId> peers) { selected = std::move(peers); });
    sim.run();
    if (selected.size() >= 2) {
      if (selected.size() > 3) selected.resize(3);
      net::FaultPlan plan;
      plan.crash_forever(sim.now() + 1.5, overlay::node_of(selected.front()));
      plan.crash_forever(sim.now() + 1.5, dep.broker().node());
      dep.install_faults(std::move(plan));
      DistributionOptions dist;
      dist.max_failovers_per_share = 4;
      dist.backoff_initial = 10.0;
      std::optional<FileService::DistributionResult> result;
      dep.control().files().distribute(
          8 * kMegabyte, 4, selected, small_transfer(8 * kMegabyte, 1),
          [&](const FileService::DistributionResult& r) { result = r; }, dist);
      sim.run();
      sim.run_until(sim.now() + 60.0);
      EXPECT_TRUE(result.has_value()) << "seed " << seed;
    }
  }

  // The invariants hold on every seed, calm or churny: exercised here
  // so the property suite doubles as the watchdog's green-path gate.
  dog.finalize();
  EXPECT_TRUE(dog.violations().empty()) << "seed " << seed;
  dep.attach_tracing(nullptr);
  return rec.jsonl();
}

TEST(TraceDeterminism, SameSeedDumpsAreByteIdentical) {
  for (std::uint64_t seed = 90; seed < 114; ++seed) {
    const std::string first = traced_run(seed);
    const std::string second = traced_run(seed);
    ASSERT_FALSE(first.empty()) << "seed " << seed;
    EXPECT_EQ(first, second) << "trace dump diverged for seed " << seed;
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(TraceDeterminism, Fig2TracePathWritesIdenticalDumps) {
  RunOptions options;
  options.repetitions = 1;
  options.threads = 1;
  const auto run = [&](const std::string& path) {
    options.trace_path = path;
    (void)run_fig2_petition(options);
    const std::string dump = slurp(path);
    std::remove(path.c_str());
    return dump;
  };
  const std::string first = run("fig2_trace_det_a.jsonl");
  const std::string second = run("fig2_trace_det_b.jsonl");
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"schema\":\"peerlab.trace/1\""), std::string::npos);
  EXPECT_NE(first.find("\"kind\":\"petition-send\""), std::string::npos);
}

}  // namespace
}  // namespace peerlab::experiments
