#include "peerlab/experiments/harness.hpp"

#include <gtest/gtest.h>

#include <set>

#include "peerlab/common/check.hpp"
#include "peerlab/sim/rng.hpp"

namespace peerlab::experiments {
namespace {

TEST(Harness, RepetitionSeedsAreDistinctAndStable) {
  RunOptions options;
  std::set<std::uint64_t> seeds;
  for (int rep = 0; rep < 100; ++rep) {
    seeds.insert(repetition_seed(options, rep));
  }
  EXPECT_EQ(seeds.size(), 100u);
  EXPECT_EQ(repetition_seed(options, 7), repetition_seed(options, 7));
  RunOptions other;
  other.base_seed = 9999;
  EXPECT_NE(repetition_seed(options, 0), repetition_seed(other, 0));
}

TEST(Harness, ResultsArriveInRepetitionOrder) {
  RunOptions options;
  options.repetitions = 16;
  options.threads = 4;
  const auto results = run_repetitions<int>(
      options, [](std::uint64_t, int rep) { return rep * 10; });
  ASSERT_EQ(results.size(), 16u);
  for (int rep = 0; rep < 16; ++rep) {
    EXPECT_EQ(results[static_cast<std::size_t>(rep)], rep * 10);
  }
}

TEST(Harness, ParallelAndSerialProduceIdenticalResults) {
  auto body = [](std::uint64_t seed, int rep) {
    sim::Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i <= rep; ++i) sum += rng.uniform();
    return sum;
  };
  RunOptions serial;
  serial.repetitions = 12;
  serial.threads = 1;
  RunOptions parallel = serial;
  parallel.threads = 6;
  const auto a = run_repetitions<double>(serial, body);
  const auto b = run_repetitions<double>(parallel, body);
  EXPECT_EQ(a, b);
}

TEST(Harness, WorkerExceptionsPropagate) {
  RunOptions options;
  options.repetitions = 4;
  options.threads = 2;
  EXPECT_THROW(run_repetitions<int>(options,
                                    [](std::uint64_t, int rep) -> int {
                                      if (rep == 2) throw std::runtime_error("boom");
                                      return rep;
                                    }),
               std::runtime_error);
}

TEST(Harness, RejectsZeroRepetitions) {
  RunOptions options;
  options.repetitions = 0;
  EXPECT_THROW(run_repetitions<int>(options, [](std::uint64_t, int) { return 0; }),
               InvariantError);
}

TEST(Harness, SummarizeMatchesManualStats) {
  const auto summary = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(summary.count(), 4u);
  EXPECT_DOUBLE_EQ(summary.mean(), 2.5);
  EXPECT_DOUBLE_EQ(summary.min(), 1.0);
  EXPECT_DOUBLE_EQ(summary.max(), 4.0);
}

}  // namespace
}  // namespace peerlab::experiments
