// Smoke tests for the figure drivers: one repetition each, asserting
// the load-bearing shape so a regression in any layer below (network
// calibration, transfer protocol, selection) fails loudly here, not
// just in the bench binaries.

#include "peerlab/experiments/figures.hpp"

#include <gtest/gtest.h>

namespace peerlab::experiments {
namespace {

RunOptions one_rep() {
  RunOptions options;
  options.repetitions = 1;
  options.threads = 1;
  return options;
}

TEST(Figures, Fig2PetitionShape) {
  const PerPeer result = run_fig2_petition(one_rep());
  // SC7 worst, fast peers sub-second.
  std::size_t worst = 0;
  for (std::size_t i = 1; i < 8; ++i) {
    if (result[i].mean() > result[worst].mean()) worst = i;
  }
  EXPECT_EQ(worst, 6u);
  EXPECT_LT(result[1].mean(), 1.0);
  EXPECT_LT(result[7].mean(), 1.0);
  EXPECT_GT(result[6].mean(), 10.0);
}

TEST(Figures, Fig3And4StragglerShape) {
  const PerPeer transfer = run_fig3_transfer50(one_rep());
  const PerPeer lastmb = run_fig4_last_mb(one_rep());
  for (std::size_t i = 0; i < 8; ++i) {
    if (i == 6) continue;
    EXPECT_GT(transfer[6].mean(), transfer[i].mean()) << "fig3 SC" << (i + 1);
    EXPECT_GT(lastmb[6].mean(), lastmb[i].mean()) << "fig4 SC" << (i + 1);
  }
}

TEST(Figures, Fig5GranularityOrdering) {
  const Fig5Result result = run_fig5_granularity(one_rep());
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_GT(result.whole[i].mean(), result.four[i].mean()) << "SC" << (i + 1);
    EXPECT_GT(result.four[i].mean(), result.sixteen[i].mean()) << "SC" << (i + 1);
  }
  EXPECT_GT(result.whole[1].mean() / result.sixteen[1].mean(), 5.0);
}

TEST(Figures, Fig7TransferIsAdditive) {
  const Fig7Result result = run_fig7_execution(one_rep());
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_GT(result.transmission_execution[i].mean(), result.just_execution[i].mean())
        << "SC" << (i + 1);
  }
  // SC7 is the compute straggler.
  for (std::size_t i = 0; i < 8; ++i) {
    if (i == 6) continue;
    EXPECT_GT(result.just_execution[6].mean(), result.just_execution[i].mean());
  }
}

TEST(Figures, DriversAreDeterministic) {
  const auto a = run_fig2_petition(one_rep());
  const auto b = run_fig2_petition(one_rep());
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a[i].mean(), b[i].mean());
  }
}

}  // namespace
}  // namespace peerlab::experiments
