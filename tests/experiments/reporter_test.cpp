#include "peerlab/experiments/reporter.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "peerlab/common/check.hpp"

namespace peerlab::experiments {
namespace {

TEST(Reporter, CellFormatsWithPrecision) {
  EXPECT_EQ(cell(1.23456), "1.23");
  EXPECT_EQ(cell(1.23456, 1), "1.2");
  EXPECT_EQ(cell(1.0, 0), "1");
  EXPECT_EQ(cell(-0.456, 2), "-0.46");
}

TEST(Reporter, TableRendersAlignedColumns) {
  Table table("title line", {"peer", "value"});
  table.add_row({"SC1", "12.86"});
  table.add_row({"a-longer-name", "0.04"});
  const std::string text = table.render();
  EXPECT_NE(text.find("title line"), std::string::npos);
  EXPECT_NE(text.find("peer"), std::string::npos);
  EXPECT_NE(text.find("a-longer-name"), std::string::npos);
  // Header and both rows plus separator -> at least 4 newlines.
  EXPECT_GE(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(Reporter, TableRejectsArityMismatch) {
  Table table("t", {"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvariantError);
  EXPECT_THROW(Table("t", {}), InvariantError);
}

TEST(Reporter, CsvEscapesNothingButIsComplete) {
  Table table("t", {"x", "y"});
  table.add_row({"1", "2"});
  table.add_row({"3", "4"});
  EXPECT_EQ(table.csv(), "x,y\n1,2\n3,4\n");
}

TEST(Reporter, WriteCsvRoundTrips) {
  Table table("t", {"k", "v"});
  table.add_row({"a", "1"});
  const std::string path = ::testing::TempDir() + "/reporter_test.csv";
  table.write_csv(path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "k,v\na,1\n");
  std::remove(path.c_str());
}

TEST(Reporter, ShapeCheckReturnsItsVerdict) {
  EXPECT_TRUE(shape_check("always true", true));
  EXPECT_FALSE(shape_check("always false", false));
}

}  // namespace
}  // namespace peerlab::experiments
