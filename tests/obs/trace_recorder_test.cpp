// TraceRecorder mechanics: deterministic id minting, per-node rings
// with oldest-first overwrite, byte-stable JSONL dumps, the flight
// recorder (postmortem arming, first-trigger-wins, assertion hook) —
// and the invariant Watchdog's verdict logic over synthetic chains.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "peerlab/common/check.hpp"
#include "peerlab/obs/metrics.hpp"
#include "peerlab/obs/trace.hpp"
#include "peerlab/obs/watchdog.hpp"
#include "peerlab/sim/simulator.hpp"

namespace peerlab::obs::trace {
namespace {

using ViolationKind = Watchdog::ViolationKind;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(TraceRecorder, MintingIsSequentialAndDeterministic) {
  sim::Simulator sim(1);
  TraceRecorder rec(sim);
  const TraceContext a = rec.root();
  const TraceContext b = rec.root();
  EXPECT_EQ(a.id, 1u);
  EXPECT_EQ(b.id, 2u);
  EXPECT_TRUE(a.active());
  EXPECT_FALSE(TraceContext{}.active());
  const TraceContext child = rec.child_of(a);
  EXPECT_EQ(child.id, a.id);
  EXPECT_NE(child.span, a.span);
  const TraceContext hopped = a.hop();
  EXPECT_EQ(hopped.id, a.id);
  EXPECT_EQ(hopped.hops, a.hops + 1);
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  sim::Simulator sim(1);
  TraceRecorder::Options opts;
  opts.ring_capacity = 4;
  TraceRecorder rec(sim, opts);
  const TraceContext ctx = rec.root();
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.emit(NodeId(1), TraceKind::kPartSend, ctx, i);
  }
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first overwrite: the retained window is the newest four.
  EXPECT_EQ(events.front().a, 6u);
  EXPECT_EQ(events.back().a, 9u);
}

TEST(TraceRecorder, RingsArePerNode) {
  sim::Simulator sim(1);
  TraceRecorder::Options opts;
  opts.ring_capacity = 2;
  TraceRecorder rec(sim, opts);
  const TraceContext ctx = rec.root();
  rec.emit(NodeId(1), TraceKind::kPartSend, ctx, 1);
  rec.emit(NodeId(2), TraceKind::kPartSend, ctx, 2);
  rec.emit(NodeId(1), TraceKind::kPartSend, ctx, 3);
  EXPECT_EQ(rec.dropped(), 0u);  // each node has its own ring
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  // Merged stream is seq-ordered across rings.
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[1].a, 2u);
  EXPECT_EQ(events[2].a, 3u);
}

TEST(TraceRecorder, ChainFiltersOneTrace) {
  sim::Simulator sim(1);
  TraceRecorder rec(sim);
  const TraceContext a = rec.root();
  const TraceContext b = rec.root();
  rec.emit(NodeId(1), TraceKind::kPetitionSend, a, 7);
  rec.emit(NodeId(1), TraceKind::kPetitionSend, b, 8);
  rec.emit_ambient(NodeId(), TraceKind::kRelevel, 1, 1);
  ASSERT_EQ(rec.chain(a.id).size(), 1u);
  EXPECT_EQ(rec.chain(a.id).front().a, 7u);
  EXPECT_EQ(rec.chain(b.id).front().a, 8u);
}

TEST(TraceRecorder, JsonlIsByteStableAcrossIdenticalRuns) {
  const auto run = [] {
    sim::Simulator sim(42);
    TraceRecorder rec(sim);
    const TraceContext ctx = rec.root();
    rec.emit(NodeId(3), TraceKind::kPetitionSend, ctx, 1, 2);
    rec.emit(NodeId(4), TraceKind::kPetitionRecv, ctx.hop(), 1, 0);
    rec.emit_ambient(NodeId(), TraceKind::kRelevel, 2, 5);
    return rec.jsonl();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  // Header line carries the schema tag and accounting.
  EXPECT_NE(first.find("\"schema\":\"peerlab.trace/1\""), std::string::npos);
  EXPECT_NE(first.find("\"recorded\":3"), std::string::npos);
  EXPECT_NE(first.find("\"kind\":\"petition-send\""), std::string::npos);
}

TEST(TraceRecorder, PostmortemFirstTriggerWins) {
  const std::string path = "trace_recorder_test.postmortem.json";
  std::remove(path.c_str());
  sim::Simulator sim(1);
  TraceRecorder rec(sim);
  rec.arm_postmortem(path);
  const TraceContext a = rec.root();
  const TraceContext b = rec.root();
  rec.emit(NodeId(1), TraceKind::kPetitionSend, a, 11);
  rec.emit(NodeId(1), TraceKind::kPetitionSend, b, 22);
  rec.postmortem("watchdog", "confirm-without-petition", {a.id});
  rec.postmortem("watchdog", "double-reissue", {b.id});
  EXPECT_EQ(rec.postmortems(), 2u);
  const std::string dump = slurp(path);
  // The earliest failure is preserved; later triggers only count.
  EXPECT_NE(dump.find("\"schema\": \"peerlab.postmortem/1\""), std::string::npos);
  EXPECT_NE(dump.find("confirm-without-petition"), std::string::npos);
  EXPECT_EQ(dump.find("double-reissue"), std::string::npos);
  // Implicated-trace filtering: trace b's petition is not in the dump.
  EXPECT_NE(dump.find("\"a\":11"), std::string::npos);
  EXPECT_EQ(dump.find("\"a\":22"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceRecorder, FiredCheckDumpsPostmortem) {
  const std::string path = "trace_recorder_check.postmortem.json";
  std::remove(path.c_str());
  sim::Simulator sim(1);
  TraceRecorder rec(sim);
  rec.arm_postmortem(path);
  rec.emit(NodeId(1), TraceKind::kPetitionSend, rec.root(), 1);
  EXPECT_THROW(
      { PEERLAB_CHECK_MSG(false, "deliberate test failure"); }, InvariantError);
  EXPECT_EQ(rec.postmortems(), 1u);
  const std::string dump = slurp(path);
  EXPECT_NE(dump.find("\"reason\": \"assertion\""), std::string::npos);
  EXPECT_NE(dump.find("deliberate test failure"), std::string::npos);
  std::remove(path.c_str());
}

// ---- watchdog verdicts over synthetic chains -----------------------

struct WatchdogWorld {
  sim::Simulator sim{1};
  TraceRecorder rec{sim};
  Watchdog dog{rec};
};

TEST(Watchdog, GreenChainStaysSilent) {
  WatchdogWorld w;
  const TraceContext root = w.rec.root();
  const TraceContext sel = w.rec.child_of(root);
  w.rec.emit(NodeId(1), TraceKind::kSelectRequest, sel, 2, 1, root.span);
  w.rec.emit(NodeId(1), TraceKind::kSelectDeliver, sel, 2, 1);
  w.rec.emit(NodeId(1), TraceKind::kPetitionSend, root, 100);
  w.rec.emit(NodeId(2), TraceKind::kPetitionRecv, root.hop(), 100);
  w.rec.emit(NodeId(1), TraceKind::kConfirmRecv, root, 100);
  w.rec.emit(NodeId(1), TraceKind::kTransferDone, root, 100);
  w.dog.finalize();
  EXPECT_TRUE(w.dog.violations().empty());
  EXPECT_GT(w.dog.checks(), 0u);
}

TEST(Watchdog, ConfirmWithoutPetitionIsRaised) {
  WatchdogWorld w;
  const TraceContext root = w.rec.root();
  w.rec.emit(NodeId(1), TraceKind::kConfirmRecv, root, 999);
  ASSERT_EQ(w.dog.violations().size(), 1u);
  EXPECT_EQ(w.dog.count(ViolationKind::kConfirmWithoutPetition), 1u);
  // The verdict itself lands on the chain as a kViolation event.
  const auto chain = w.rec.chain(root.id);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain.back().kind, TraceKind::kViolation);
}

TEST(Watchdog, ReissueExactlyOnceIsLegal) {
  WatchdogWorld w;
  const TraceContext root = w.rec.root();
  const TraceContext sel = w.rec.child_of(root);
  w.rec.emit(NodeId(1), TraceKind::kSelectRequest, sel, 2, 1, root.span);
  w.rec.emit(NodeId(1), TraceKind::kSelectFail, sel, 1, 1);
  w.rec.emit(NodeId(1), TraceKind::kSelectReissue, sel, 2, 2);
  EXPECT_TRUE(w.dog.violations().empty());
  // A second re-issue of the same span is a double re-issue.
  w.rec.emit(NodeId(1), TraceKind::kSelectReissue, sel, 2, 2);
  EXPECT_EQ(w.dog.count(ViolationKind::kDoubleReissue), 1u);
}

TEST(Watchdog, ReissueOfAnOpenRequestIsRaised) {
  WatchdogWorld w;
  const TraceContext root = w.rec.root();
  const TraceContext sel = w.rec.child_of(root);
  w.rec.emit(NodeId(1), TraceKind::kSelectRequest, sel, 2, 1, root.span);
  w.rec.emit(NodeId(1), TraceKind::kSelectReissue, sel, 2, 2);  // never failed
  EXPECT_EQ(w.dog.count(ViolationKind::kDoubleReissue), 1u);
}

TEST(Watchdog, IndexAuditMismatchIsRaised) {
  WatchdogWorld w;
  const TraceContext root = w.rec.root();
  w.rec.emit(NodeId(1), TraceKind::kIndexAudit, root, 3, 1);  // match
  EXPECT_TRUE(w.dog.violations().empty());
  w.rec.emit(NodeId(1), TraceKind::kIndexAudit, root, 3, 0);  // mismatch
  EXPECT_EQ(w.dog.count(ViolationKind::kIndexMismatch), 1u);
}

TEST(Watchdog, FinalizeSweepsOpenPetitionsAndSelections) {
  WatchdogWorld w;
  const TraceContext root = w.rec.root();
  const TraceContext sel = w.rec.child_of(root);
  w.rec.emit(NodeId(1), TraceKind::kPetitionSend, root, 5);
  w.rec.emit(NodeId(1), TraceKind::kSelectRequest, sel, 1, 1, root.span);
  w.dog.finalize();
  EXPECT_EQ(w.dog.count(ViolationKind::kUnterminatedPetition), 1u);
  EXPECT_EQ(w.dog.count(ViolationKind::kUnterminatedSelection), 1u);
}

TEST(Watchdog, MetricsCountChecksAndViolations) {
  sim::Simulator sim(1);
  TraceRecorder rec(sim);
  Watchdog dog(rec);
  MetricRegistry registry;
  rec.attach_metrics(registry);
  dog.attach_metrics(registry);
  const TraceContext root = rec.root();
  rec.emit(NodeId(1), TraceKind::kConfirmRecv, root, 1);
  EXPECT_EQ(registry.counter("watchdog.violations", "violations").value(), 1u);
  EXPECT_GT(registry.counter("watchdog.checks", "events").value(), 0u);
  EXPECT_EQ(registry.counter("watchdog.traces", "traces").value(), 1u);
  EXPECT_EQ(registry.counter("trace.traces", "traces").value(), 1u);
  EXPECT_GT(registry.counter("trace.events", "events").value(), 0u);
}

}  // namespace
}  // namespace peerlab::obs::trace
