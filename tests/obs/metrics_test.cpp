#include "peerlab/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace peerlab::obs {
namespace {

TEST(Counter, AccumulatesAndMerges) {
  Counter a;
  EXPECT_EQ(a.value(), 0u);
  a.add();
  a.add(41);
  EXPECT_EQ(a.value(), 42u);
  Counter b;
  b.add(8);
  a.merge(b);
  EXPECT_EQ(a.value(), 50u);
}

TEST(Gauge, SetAddMerge) {
  Gauge g;
  g.set(1.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  Gauge h;
  h.set(3.0);
  g.merge(h);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
}

Histogram::Options small_options() {
  Histogram::Options opts;
  opts.lo = 1.0;
  opts.hi = 16.0;
  opts.sub_buckets = 4;
  return opts;
}

TEST(Histogram, EmptyReadsAsZero) {
  Histogram h(small_options());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST(Histogram, BucketLayoutCoversRange) {
  Histogram h(small_options());
  // [1,16) in octaves of 4 sub-buckets: [1,2) [2,4) [4,8) [8,16)
  // → 4 octaves * 4 + underflow + overflow = 18 buckets.
  EXPECT_EQ(h.bucket_count(), 18u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 1.25);
  EXPECT_DOUBLE_EQ(h.bucket_lo(h.bucket_count() - 1), 16.0);
  // Bucket bounds tile the range with no gaps or overlaps.
  for (std::size_t i = 1; i + 1 < h.bucket_count(); ++i) {
    EXPECT_DOUBLE_EQ(h.bucket_hi(i), h.bucket_lo(i + 1)) << "gap after bucket " << i;
    EXPECT_LT(h.bucket_lo(i), h.bucket_hi(i));
  }
}

TEST(Histogram, ExactValuesAtBucketEdges) {
  Histogram h(small_options());
  // A bucket's lower edge is inclusive: recording exactly bucket_lo(i)
  // must land in bucket i, and the value just below must not.
  for (std::size_t i = 1; i + 1 < h.bucket_count(); ++i) {
    const double edge = h.bucket_lo(i);
    EXPECT_EQ(h.bucket_index(edge), i) << "edge " << edge;
    EXPECT_EQ(h.bucket_index(std::nextafter(edge, 0.0)), i - 1) << "below edge " << edge;
  }
  // Range edges: lo is the first real bucket, hi overflows.
  EXPECT_EQ(h.bucket_index(1.0), 1u);
  EXPECT_EQ(h.bucket_index(std::nextafter(1.0, 0.0)), 0u);
  EXPECT_EQ(h.bucket_index(16.0), h.bucket_count() - 1);
  EXPECT_EQ(h.bucket_index(std::nextafter(16.0, 0.0)), h.bucket_count() - 2);
}

TEST(Histogram, UnderflowAndOverflowConserveTotals) {
  Histogram h(small_options());
  h.record(0.25);   // under lo
  h.record(1000.0); // over hi
  h.record(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(h.bucket_count() - 1), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 1003.25);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(Histogram, ExactStatsAreExact) {
  Histogram h;  // default seconds-ish geometry
  const double values[] = {0.001, 0.010, 0.100, 1.0, 10.0};
  double sum = 0.0;
  for (double v : values) {
    h.record(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_DOUBLE_EQ(h.mean(), sum / 5.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(Histogram, QuantilesBracketedByBuckets) {
  Histogram h(small_options());
  for (int i = 0; i < 100; ++i) h.record(3.0);  // all in bucket [3, 3.5)
  // Every quantile of a point mass must read inside that sample's
  // bucket — and the min/max clamp pins it to exactly 3.0 here.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

TEST(Histogram, QuantileOrderingAndBounds) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i * 0.001);  // 1ms .. 1s uniform
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(h.min(), p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  // Log-linear resolution is ~1/sub_buckets per bucket; allow 2 buckets
  // of slop around the exact order statistics.
  EXPECT_NEAR(p50, 0.5, 0.5 * 0.3);
  EXPECT_NEAR(p90, 0.9, 0.9 * 0.3);
  EXPECT_NEAR(p99, 0.99, 0.99 * 0.3);
}

TEST(Histogram, MergeCombinesDistributions) {
  Histogram a(small_options());
  Histogram b(small_options());
  a.record(1.5);
  a.record(2.5);
  b.record(6.0);
  b.record(12.0);
  b.record(0.1);  // underflow travels through merge too
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.sum(), 1.5 + 2.5 + 6.0 + 12.0 + 0.1);
  EXPECT_DOUBLE_EQ(a.min(), 0.1);
  EXPECT_DOUBLE_EQ(a.max(), 12.0);
  EXPECT_EQ(a.bucket(0), 1u);
  // Merging an empty histogram is a no-op; merging into an empty one
  // copies the source's extremes.
  Histogram empty(small_options());
  a.merge(empty);
  EXPECT_EQ(a.count(), 5u);
  Histogram fresh(small_options());
  fresh.merge(a);
  EXPECT_EQ(fresh.count(), 5u);
  EXPECT_DOUBLE_EQ(fresh.min(), 0.1);
  EXPECT_DOUBLE_EQ(fresh.max(), 12.0);
}

TEST(Registry, HandlesAreStableAndDeduplicated) {
  MetricRegistry reg;
  Counter& c1 = reg.counter("net.datagrams_sent", "datagrams");
  Counter& c2 = reg.counter("net.datagrams_sent");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  EXPECT_EQ(c2.value(), 3u);
  // Creating more instruments must not move existing handles.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  EXPECT_EQ(&reg.counter("net.datagrams_sent"), &c1);
  EXPECT_EQ(reg.size(), 101u);
}

TEST(Registry, FindDoesNotCreate) {
  MetricRegistry reg;
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.size(), 0u);
  reg.counter("a");
  reg.gauge("b");
  reg.histogram("c");
  EXPECT_NE(reg.find_counter("a"), nullptr);
  EXPECT_NE(reg.find_gauge("b"), nullptr);
  EXPECT_NE(reg.find_histogram("c"), nullptr);
  // Kind mismatch reads as absent.
  EXPECT_EQ(reg.find_gauge("a"), nullptr);
  EXPECT_EQ(reg.find_counter("c"), nullptr);
}

TEST(Registry, MergeAggregatesAcrossRegistries) {
  MetricRegistry total;
  total.counter("x").add(1);
  total.histogram("lat", "s").record(0.5);

  MetricRegistry rep;
  rep.counter("x").add(2);
  rep.counter("y").add(7);
  rep.gauge("g").set(1.25);
  rep.histogram("lat", "s").record(1.5);

  total.merge(rep);
  EXPECT_EQ(total.find_counter("x")->value(), 3u);
  EXPECT_EQ(total.find_counter("y")->value(), 7u);
  EXPECT_DOUBLE_EQ(total.find_gauge("g")->value(), 1.25);
  EXPECT_EQ(total.find_histogram("lat")->count(), 2u);
  EXPECT_DOUBLE_EQ(total.find_histogram("lat")->sum(), 2.0);
}

TEST(Registry, JsonSummaryHasFlatMetricsMap) {
  MetricRegistry reg;
  reg.counter("overlay.failovers").add(4);
  reg.gauge("net.brownout_seconds", "s").set(12.5);
  Histogram& h = reg.histogram("overlay.selection.latency_s", "s");
  h.record(0.25);
  h.record(0.75);

  const std::string json = reg.json("fig6");
  EXPECT_NE(json.find("\"label\": \"fig6\""), std::string::npos);
  EXPECT_NE(json.find("\"overlay.failovers\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"net.brownout_seconds\": 12.5"), std::string::npos);
  EXPECT_NE(json.find("\"overlay.selection.latency_s.count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"overlay.selection.latency_s.p50\""), std::string::npos);
  EXPECT_NE(json.find("\"overlay.selection.latency_s.p99\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\": \"s\""), std::string::npos);
}

}  // namespace
}  // namespace peerlab::obs
