#include "peerlab/obs/exporter.hpp"

#include <gtest/gtest.h>

#include "peerlab/obs/span.hpp"
#include "peerlab/sim/simulator.hpp"
#include "peerlab/sim/trace.hpp"

namespace peerlab::obs {
namespace {

TEST(ScopedSpan, RecordsVirtualElapsed) {
  sim::Simulator sim;
  Histogram h;
  sim.schedule(1.0, [&] {
    auto* span = new ScopedSpan(&h, sim);
    sim.schedule(2.5, [span] { delete span; });
  });
  sim.run();
  ASSERT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 2.5);
}

TEST(ScopedSpan, NullHistogramIsNoop) {
  sim::Simulator sim;
  ScopedSpan span(nullptr, sim);
  span.finish();  // must not crash
}

TEST(ScopedSpan, CancelSuppressesRecording) {
  sim::Simulator sim;
  Histogram h;
  {
    ScopedSpan span(&h, sim);
    span.cancel();
  }
  EXPECT_EQ(h.count(), 0u);
}

TEST(ScopedSpan, FinishRecordsOnceOnly) {
  sim::Simulator sim;
  Histogram h;
  {
    ScopedSpan span(&h, sim);
    span.finish();
  }  // destructor must not double-record
  EXPECT_EQ(h.count(), 1u);
}

TEST(WallSpan, RecordsNonNegativeWallTime) {
  Histogram h;
  { WallSpan span(&h); }
  ASSERT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);
}

TEST(RunProfiled, MatchesPlainRunAndTerminatesWithDaemons) {
  sim::Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(i * 0.1, [&] { ++fired; });
  }
  // A self-rescheduling daemon must not keep the profiler spinning.
  std::function<void()> heartbeat = [&] { sim.schedule_daemon(0.05, heartbeat); };
  sim.schedule_daemon(0.05, heartbeat);

  Histogram h;
  const std::uint64_t executed = run_profiled(sim, &h, /*batch=*/4);
  EXPECT_EQ(fired, 10);
  EXPECT_GE(executed, 10u);
  EXPECT_GE(h.count(), 1u);
}

TEST(SnapshotExporter, PeriodicRowsAndCsv) {
  sim::Simulator sim;
  MetricRegistry reg;
  Counter& sent = reg.counter("net.datagrams_sent");
  Histogram& lat = reg.histogram("lat", "s");

  SnapshotExporter::Options opts;
  opts.period = 1.0;
  SnapshotExporter exporter(sim, reg, opts);

  sim.schedule(0.5, [&] { sent.add(2); });
  sim.schedule(1.5, [&] {
    sent.add(3);
    lat.record(0.25);
  });
  sim.schedule(3.5, [&] {});  // keep non-daemon work alive past t=3
  sim.run();

  // Snapshots at t=1, 2, 3 (daemon fires while real work remains).
  EXPECT_EQ(exporter.snapshots_taken(), 3u);
  const auto& rows = exporter.rows();
  ASSERT_FALSE(rows.empty());
  // First snapshot sees only the t=0.5 increment.
  EXPECT_EQ(rows[0].metric, "net.datagrams_sent");
  EXPECT_DOUBLE_EQ(rows[0].time, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].value, 2.0);

  const std::string csv = exporter.csv();
  EXPECT_NE(csv.find("time,metric,stat,value\n"), std::string::npos);
  EXPECT_NE(csv.find("1,net.datagrams_sent,value,2"), std::string::npos);
  EXPECT_NE(csv.find("2,net.datagrams_sent,value,5"), std::string::npos);
  EXPECT_NE(csv.find("lat,p50"), std::string::npos);
}

TEST(SnapshotExporter, TrackedTracerDropsSurfaceAsCounterAndWarning) {
  sim::Simulator sim;
  MetricRegistry reg;
  sim::Tracer tracer(/*capacity=*/2);
  SnapshotExporter exporter(sim, reg);
  exporter.track_tracer(tracer, reg);

  // No drops yet: counter is zero and the JSON carries no warning.
  EXPECT_EQ(reg.counter("trace.dropped", "events").value(), 0u);
  EXPECT_EQ(exporter.json("t").find("\"warnings\""), std::string::npos);

  for (int i = 0; i < 5; ++i) {
    tracer.record(0.0, sim::TraceCategory::kNetwork, "m");
  }
  const std::string json = exporter.json("t");
  EXPECT_EQ(reg.counter("trace.dropped", "events").value(), 3u);
  EXPECT_NE(json.find("\"warnings\""), std::string::npos);
  EXPECT_NE(json.find("3 events dropped"), std::string::npos);
}

TEST(SnapshotExporter, DestructionCancelsDaemon) {
  sim::Simulator sim;
  MetricRegistry reg;
  reg.counter("c");
  {
    SnapshotExporter exporter(sim, reg);
  }
  // The daemon's closure captured the dead exporter; running must not
  // touch it (the handle was cancelled).
  sim.schedule(30.0, [] {});
  sim.run();
}

TEST(SnapshotExporter, ExporterNeverKeepsSimAlive) {
  sim::Simulator sim;
  MetricRegistry reg;
  reg.counter("c");
  SnapshotExporter exporter(sim, reg);
  // No real work: run() must return immediately with zero snapshots.
  sim.run();
  EXPECT_EQ(exporter.snapshots_taken(), 0u);
}

}  // namespace
}  // namespace peerlab::obs
