// docs/METRICS.md is the operator-facing instrument catalogue; this
// test keeps it honest. It builds a fully-instrumented deployment
// (network + flow scheduler with wall profiling, primary + standby
// brokers with the replica set, clients, an installed fault injector
// and an installed adversary engine), dumps the registry inventory
// with describe(), and diffs
// it against the doc's tables in both directions: an instrument added
// to the code must be documented, and a documented instrument must
// still exist with the same kind and unit.

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "peerlab/net/fault_plan.hpp"
#include "peerlab/obs/exporter.hpp"
#include "peerlab/obs/metrics.hpp"
#include "peerlab/obs/trace.hpp"
#include "peerlab/obs/watchdog.hpp"
#include "peerlab/planetlab/deployment.hpp"
#include "peerlab/sim/trace.hpp"

namespace peerlab::obs {
namespace {

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Parses "name<TAB>kind<TAB>unit" rows out of the doc's markdown
/// tables: every body row leads with a back-ticked instrument name.
std::set<std::string> parse_doc(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::set<std::string> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("| `", 0) != 0) continue;
    std::vector<std::string> cells;
    std::stringstream ss(line.substr(1));  // drop the leading '|'
    std::string cell;
    while (std::getline(ss, cell, '|')) cells.push_back(trim(cell));
    if (cells.size() < 3) {
      ADD_FAILURE() << "malformed catalogue row: " << line;
      continue;
    }
    std::string name = cells[0];
    if (name.size() < 2 || name.front() != '`' || name.back() != '`') {
      ADD_FAILURE() << "instrument name must be back-ticked: " << line;
      continue;
    }
    name = name.substr(1, name.size() - 2);
    rows.insert(name + "\t" + cells[1] + "\t" + cells[2]);
  }
  return rows;
}

TEST(MetricsDoc, CatalogueMatchesRegisteredInstruments) {
  obs::MetricRegistry registry;  // outlives the deployment it observes
  sim::Simulator sim(1);
  planetlab::DeploymentOptions options;
  options.standby_brokers = 1;  // replication instruments included
  planetlab::Deployment dep(sim, options);
  dep.attach_metrics(registry, /*wall_profiling=*/true);
  net::FaultPlan plan;  // a late no-op event: registers the faults.* counters
  plan.crash(1e9, dep.client_nodes().front(), 1.0);
  dep.install_faults(std::move(plan));
  adversary::BehaviorPlan hostile;  // likewise for the adversary.* counters
  hostile.free_rider(dep.sc_peer(1), /*from=*/1e9);
  dep.install_adversaries(std::move(hostile));
  trace::TraceRecorder recorder(sim);  // trace.* + watchdog.* counters
  Watchdog watchdog(recorder);
  recorder.attach_metrics(registry);
  watchdog.attach_metrics(registry);
  sim::Tracer tracer;  // trace.dropped, via the exporter's tracker
  SnapshotExporter exporter(sim, registry);
  exporter.track_tracer(tracer, registry);

  std::set<std::string> registered;
  {
    std::stringstream dump(registry.describe());
    std::string line;
    while (std::getline(dump, line)) {
      if (!line.empty()) registered.insert(line);
    }
  }
  ASSERT_FALSE(registered.empty());

  const std::set<std::string> documented =
      parse_doc(std::string(PEERLAB_SOURCE_DIR) + "/docs/METRICS.md");

  for (const std::string& row : registered) {
    EXPECT_TRUE(documented.count(row) > 0)
        << "instrument registered but missing (or kind/unit stale) in "
           "docs/METRICS.md: "
        << row;
  }
  for (const std::string& row : documented) {
    EXPECT_TRUE(registered.count(row) > 0)
        << "docs/METRICS.md documents an instrument the code no longer "
           "registers (or with a stale kind/unit): "
        << row;
  }
}

}  // namespace
}  // namespace peerlab::obs
