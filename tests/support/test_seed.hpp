#pragma once

// The single seed knob for every randomized test in the repo.
//
// Precedence: the PEERLAB_TEST_SEED environment variable (what CI logs
// tell you to export to replay a failure), then the CMake cache
// variable of the same name (baked in as PEERLAB_TEST_SEED_DEFAULT),
// then 1. Tests derive their per-scenario seeds from this base and must
// include the failing scenario's seed in their assertion messages, so
// any red run is reproducible from its log alone.

#include <cstdint>
#include <cstdlib>

namespace peerlab::testing {

inline std::uint64_t test_seed() {
  if (const char* env = std::getenv("PEERLAB_TEST_SEED")) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && value != 0) {
      return static_cast<std::uint64_t>(value);
    }
  }
#ifdef PEERLAB_TEST_SEED_DEFAULT
  return PEERLAB_TEST_SEED_DEFAULT;
#else
  return 1;
#endif
}

}  // namespace peerlab::testing
