// BehaviorPlan/BehaviorEngine: pure-data builders, the seeded
// random-adversaries sampler, and scripted misbehaviour actuating
// end-to-end through a live PlanetLab deployment (refusals, throttles,
// accept-then-abort, fabricated praise).

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <optional>
#include <vector>

#include "peerlab/adversary/behavior_plan.hpp"
#include "peerlab/common/check.hpp"
#include "peerlab/planetlab/deployment.hpp"

namespace peerlab::adversary {
namespace {

TEST(BehaviorPlan, BuildersFillTheSpecs) {
  BehaviorPlan plan;
  plan.free_rider(PeerId(2), 10.0, 0.5);
  plan.throttler(PeerId(3), 7.5);
  plan.flapper(PeerId(4), 3);
  plan.under_reporter(PeerId(5), 0.0);
  plan.stats_liar(PeerId(6), 4, 500.0);
  ASSERT_EQ(plan.size(), 5u);
  EXPECT_FALSE(plan.empty());

  const auto& s = plan.specs();
  EXPECT_EQ(s[0].kind, BehaviorKind::kFreeRider);
  EXPECT_DOUBLE_EQ(s[0].from, 10.0);
  EXPECT_DOUBLE_EQ(s[0].intensity, 0.5);
  EXPECT_EQ(s[1].kind, BehaviorKind::kFreeRider);
  EXPECT_DOUBLE_EQ(s[1].throttle_delay, 7.5);
  EXPECT_EQ(s[2].kind, BehaviorKind::kFlapper);
  EXPECT_EQ(s[2].accept_parts, 3);
  EXPECT_EQ(s[3].kind, BehaviorKind::kUnderReporter);
  EXPECT_DOUBLE_EQ(s[3].load_factor, 0.0);
  EXPECT_EQ(s[4].kind, BehaviorKind::kStatsLiar);
  EXPECT_EQ(s[4].praise_per_heartbeat, 4);
  EXPECT_DOUBLE_EQ(s[4].fabricated_rate, 500.0);
}

TEST(BehaviorPlan, MergeComposesPopulations) {
  BehaviorPlan leeches;
  leeches.free_rider(PeerId(2));
  BehaviorPlan liars;
  liars.stats_liar(PeerId(2));
  liars.stats_liar(PeerId(3));
  leeches.merge(liars);
  EXPECT_EQ(leeches.size(), 3u);  // compound adversaries are two specs
}

TEST(BehaviorPlan, RandomAdversariesAreSeededDistinctAndSized) {
  std::vector<PeerId> peers;
  for (std::uint64_t i = 1; i <= 10; ++i) peers.emplace_back(i);

  sim::Rng a(42);
  sim::Rng b(42);
  const auto plan = BehaviorPlan::random_adversaries(a, peers, 0.3, BehaviorKind::kFreeRider);
  const auto replay =
      BehaviorPlan::random_adversaries(b, peers, 0.3, BehaviorKind::kFreeRider);
  ASSERT_EQ(plan.size(), 3u);  // floor(0.3 * 10 + 0.5)
  ASSERT_EQ(replay.size(), 3u);

  std::vector<PeerId> chosen;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const auto& spec = plan.specs()[i];
    EXPECT_EQ(spec.kind, BehaviorKind::kFreeRider);
    EXPECT_EQ(spec.peer, replay.specs()[i].peer);  // same seed, same sample
    EXPECT_NE(std::find(peers.begin(), peers.end(), spec.peer), peers.end());
    chosen.push_back(spec.peer);
  }
  std::sort(chosen.begin(), chosen.end());
  EXPECT_EQ(std::adjacent_find(chosen.begin(), chosen.end()), chosen.end());  // distinct

  sim::Rng c(42);
  EXPECT_TRUE(
      BehaviorPlan::random_adversaries(c, peers, 0.0, BehaviorKind::kStatsLiar).empty());
  sim::Rng d(42);
  EXPECT_EQ(
      BehaviorPlan::random_adversaries(d, peers, 1.0, BehaviorKind::kStatsLiar).size(), 10u);
}

// ---- engine end-to-end against a live deployment ----

struct ScriptedOutcome {
  transport::TransferResult result;
  Seconds elapsed = 0.0;
  std::uint64_t activations = 0;
  std::uint64_t refusals = 0;
  std::uint64_t aborts = 0;
  std::uint64_t throttles = 0;
};

/// Boots the paper testbed with `script` armed against SC1, then sends
/// it one 2 MB / 2-part file from the control peer.
ScriptedOutcome run_scripted(std::uint64_t seed,
                             const std::function<void(BehaviorPlan&, PeerId)>& script) {
  sim::Simulator sim(seed);
  planetlab::Deployment dep(sim);
  BehaviorPlan plan;
  const PeerId target = dep.sc_peer(1);
  script(plan, target);
  dep.install_adversaries(std::move(plan));
  dep.boot();

  transport::FileTransferConfig cfg;
  cfg.file_size = megabytes(2.0);
  cfg.parts = 2;
  cfg.petition_retry.initial_timeout = 15.0;
  cfg.petition_retry.max_attempts = 3;
  // Patient enough for the slowest honest PlanetLab profile, tight
  // enough that a stonewalling flapper fails in seconds, not hours.
  cfg.confirm_timeout = 30.0;
  cfg.max_confirm_queries = 4;
  cfg.max_part_attempts = 3;

  ScriptedOutcome out;
  const Seconds start = sim.now();
  bool done = false;
  dep.control().files().send_file(target, cfg, [&](const transport::TransferResult& r) {
    out.result = r;
    out.elapsed = sim.now() - start;
    done = true;
  });
  sim.run();
  PEERLAB_CHECK_MSG(done, "transfer never resolved");
  const auto* engine = dep.adversaries();
  PEERLAB_CHECK_MSG(engine != nullptr, "engine not installed");
  out.activations = engine->activations();
  out.refusals = engine->refusals_decided();
  out.aborts = engine->aborts_decided();
  out.throttles = engine->throttles_decided();
  return out;
}

TEST(BehaviorEngine, FreeRiderStonewallsThePetition) {
  const auto out =
      run_scripted(7, [](BehaviorPlan& plan, PeerId target) { plan.free_rider(target); });
  EXPECT_FALSE(out.result.complete);
  EXPECT_STREQ(out.result.failure, "petition unanswered");
  EXPECT_EQ(out.activations, 1u);
  EXPECT_GE(out.refusals, 1u);
  EXPECT_EQ(out.aborts, 0u);
}

TEST(BehaviorEngine, ThrottlerCompletesLateButCompletes) {
  const auto honest = run_scripted(7, [](BehaviorPlan&, PeerId) {});
  ASSERT_TRUE(honest.result.complete);
  const auto throttled = run_scripted(
      7, [](BehaviorPlan& plan, PeerId target) { plan.throttler(target, 4.0); });
  ASSERT_TRUE(throttled.result.complete);
  EXPECT_GE(throttled.throttles, 1u);
  EXPECT_GT(throttled.elapsed, honest.elapsed + 4.0);  // every confirm limps
}

TEST(BehaviorEngine, FlapperAcceptsThenGoesSilent) {
  const auto out = run_scripted(
      7, [](BehaviorPlan& plan, PeerId target) { plan.flapper(target, /*accept_parts=*/1); });
  EXPECT_FALSE(out.result.complete);
  EXPECT_GE(out.aborts, 1u);
  EXPECT_EQ(out.refusals, 0u);  // the petition itself was accepted
}

TEST(BehaviorEngine, ScriptedRunsReplayBitForBitPerSeed) {
  const auto a =
      run_scripted(11, [](BehaviorPlan& plan, PeerId target) { plan.free_rider(target); });
  const auto b =
      run_scripted(11, [](BehaviorPlan& plan, PeerId target) { plan.free_rider(target); });
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.refusals, b.refusals);
  EXPECT_EQ(a.activations, b.activations);
}

TEST(BehaviorEngine, StatsLiarPollutesAnUndefendedBrokersHistory) {
  sim::Simulator sim(13);
  planetlab::Deployment dep(sim);  // defenses off by default
  BehaviorPlan plan;
  const PeerId liar = dep.sc_peer(2);
  plan.stats_liar(liar, /*praise=*/2, /*rate=*/800.0);
  dep.install_adversaries(std::move(plan));
  dep.boot();
  sim.run_until(sim.now() + 120.0);  // a few heartbeats of fabricated praise
  // Without defenses the broker swallows the fake records wholesale:
  // the liar now owns a glowing transfer history it never earned.
  EXPECT_FALSE(dep.broker().history().transfers_for(liar).empty());
  ASSERT_TRUE(dep.broker().history().mean_transfer_rate(liar).has_value());
  EXPECT_GT(*dep.broker().history().mean_transfer_rate(liar), 100.0);
  EXPECT_EQ(dep.broker().reputation().lies_recorded(), 0u);
}

TEST(BehaviorEngine, UnderReporterActivatesWithoutBreakingRegistration) {
  sim::Simulator sim(17);
  planetlab::Deployment dep(sim);
  BehaviorPlan plan;
  const PeerId shirker = dep.sc_peer(3);
  plan.under_reporter(shirker, /*load_factor=*/0.0);
  dep.install_adversaries(std::move(plan));
  dep.boot();
  EXPECT_EQ(dep.adversaries()->activations(), 1u);
  // Misreporting load must not cost the peer its liveness: it still
  // heartbeats, still registers, and always looks idle.
  ASSERT_NE(dep.broker().client(shirker), nullptr);
  EXPECT_TRUE(dep.broker().online(shirker));
  EXPECT_TRUE(dep.broker().client(shirker)->idle);
}

}  // namespace
}  // namespace peerlab::adversary
