#include "peerlab/sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "peerlab/common/check.hpp"

namespace peerlab::sim {
namespace {

constexpr int kSamples = 20000;

TEST(Rng, SameSeedSameSequence) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  const double x = r.uniform();
  EXPECT_GE(x, 0.0);
  EXPECT_LT(x, 1.0);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(7);
  Rng f1 = parent.fork(1);
  Rng f2 = parent.fork(2);
  Rng parent2(7);
  Rng f1b = parent2.fork(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(f1.uniform(), f1b.uniform());
  }
  // Different stream keys give different sequences.
  Rng f1c = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (f1c.uniform() == f2.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(3);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto x = r.uniform_int(0, 5);
    ASSERT_GE(x, 0);
    ASSERT_LE(x, 5);
    ++seen[static_cast<std::size_t>(x)];
  }
  for (const int c : seen) EXPECT_GT(c, 0);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
  // Out-of-range probabilities clamp instead of UB.
  EXPECT_TRUE(r.bernoulli(1.5));
  EXPECT_FALSE(r.bernoulli(-0.5));
}

TEST(Rng, NormalZeroSigmaIsDegenerate) {
  Rng r(5);
  EXPECT_DOUBLE_EQ(r.normal(3.5, 0.0), 3.5);
}

struct MeanCase {
  const char* name;
  double expected_mean;
  double tolerance;
  std::function<double(Rng&)> draw;
};

class RngMeanTest : public ::testing::TestWithParam<MeanCase> {};

TEST_P(RngMeanTest, EmpiricalMeanMatches) {
  const auto& param = GetParam();
  Rng r(2024);
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += param.draw(r);
  const double mean = sum / kSamples;
  EXPECT_NEAR(mean, param.expected_mean, param.tolerance) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, RngMeanTest,
    ::testing::Values(
        MeanCase{"uniform01", 0.5, 0.02, [](Rng& r) { return r.uniform(); }},
        MeanCase{"uniform_2_6", 4.0, 0.05, [](Rng& r) { return r.uniform(2.0, 6.0); }},
        MeanCase{"normal_10_2", 10.0, 0.1, [](Rng& r) { return r.normal(10.0, 2.0); }},
        MeanCase{"exponential_3", 3.0, 0.15, [](Rng& r) { return r.exponential(3.0); }},
        MeanCase{"lognormal_mean_12", 12.0, 0.6,
                 [](Rng& r) { return r.lognormal_mean(12.0, 0.5); }},
        MeanCase{"lognormal_mean_004", 0.04, 0.005,
                 [](Rng& r) { return r.lognormal_mean(0.04, 0.35); }},
        MeanCase{"bernoulli_03", 0.3, 0.02,
                 [](Rng& r) { return r.bernoulli(0.3) ? 1.0 : 0.0; }}),
    [](const ::testing::TestParamInfo<MeanCase>& info) { return info.param.name; });

TEST(Rng, LognormalIsAlwaysPositive) {
  Rng r(11);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GT(r.lognormal_mean(0.04, 1.0), 0.0);
  }
}

TEST(Rng, LognormalRejectsNonPositiveMean) {
  Rng r(11);
  EXPECT_THROW(r.lognormal_mean(0.0, 0.5), InvariantError);
  EXPECT_THROW(r.lognormal_mean(-1.0, 0.5), InvariantError);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng r(11);
  EXPECT_THROW(r.exponential(0.0), InvariantError);
}

TEST(Rng, ParetoStaysInBounds) {
  Rng r(13);
  for (int i = 0; i < 2000; ++i) {
    const double x = r.pareto(1.0, 100.0, 1.3);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(Rng, ParetoRejectsBadParameters) {
  Rng r(13);
  EXPECT_THROW(r.pareto(0.0, 10.0, 1.0), InvariantError);
  EXPECT_THROW(r.pareto(5.0, 5.0, 1.0), InvariantError);
  EXPECT_THROW(r.pareto(1.0, 10.0, 0.0), InvariantError);
}

TEST(Rng, ParetoIsHeavyTailedTowardLowerBound) {
  Rng r(17);
  int low = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (r.pareto(1.0, 1000.0, 1.5) < 2.0) ++low;
  }
  // For alpha 1.5 roughly 65% of mass is below 2x the lower bound.
  EXPECT_GT(low, kSamples / 2);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng r(19);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[r.weighted_index(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, WeightedIndexRejectsDegenerateInput) {
  Rng r(19);
  EXPECT_THROW(r.weighted_index({}), InvariantError);
  EXPECT_THROW(r.weighted_index({0.0, 0.0}), InvariantError);
  EXPECT_THROW(r.weighted_index({1.0, -1.0}), InvariantError);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(23);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  auto shuffled = items;
  r.shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, ShuffleHandlesTinyInputs) {
  Rng r(23);
  std::vector<int> empty;
  r.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  r.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

}  // namespace
}  // namespace peerlab::sim
