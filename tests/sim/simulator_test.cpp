#include "peerlab/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace peerlab::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunExecutesAllEventsAdvancingClock) {
  Simulator sim;
  std::vector<double> at;
  sim.schedule(2.0, [&] { at.push_back(sim.now()); });
  sim.schedule(1.0, [&] { at.push_back(sim.now()); });
  const auto ran = sim.run();
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(at, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, ScheduledActionsCanScheduleMore) {
  Simulator sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 5) sim.schedule(1.0, hop);
  };
  sim.schedule(1.0, hop);
  sim.run();
  EXPECT_EQ(hops, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);  // clock advanced to horizon
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilInclusiveOfHorizonEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(5.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StepExecutesBoundedCount) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) sim.schedule(static_cast<double>(i + 1), [&] { ++fired; });
  EXPECT_EQ(sim.step(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, StopExitsRunLoop) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // A later run() resumes.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule(1.0, [&] {
    sim.schedule_at(4.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
}

TEST(Simulator, RejectsSchedulingIntoThePast) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-0.5, [] {}), InvariantError);
  sim.schedule(2.0, [&] { EXPECT_THROW(sim.schedule_at(1.0, [] {}), InvariantError); });
  sim.run();
}

TEST(Simulator, ZeroDelayFiresAtCurrentTimeAfterCurrentEvent) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1.0, [&] {
    order.push_back(1);
    sim.schedule(0.0, [&] { order.push_back(2); });
    order.push_back(3);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(Simulator, ExecutedEventsAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Simulator, ClearDropsPendingWork) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.clear();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, DaemonEventsDoNotKeepRunAlive) {
  Simulator sim;
  int heartbeats = 0;
  std::function<void()> beat = [&] {
    ++heartbeats;
    sim.schedule_daemon(10.0, beat);
  };
  sim.schedule_daemon(10.0, beat);
  int work = 0;
  sim.schedule(35.0, [&] { ++work; });
  sim.run();
  // Daemons at t=10,20,30 fire while the t=35 work is pending; the
  // t=40 daemon must not run — the loop exits when only daemons remain.
  EXPECT_EQ(work, 1);
  EXPECT_EQ(heartbeats, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 35.0);
}

TEST(Simulator, BoundedRunFiresDaemonsUpToHorizon) {
  Simulator sim;
  int heartbeats = 0;
  std::function<void()> beat = [&] {
    ++heartbeats;
    sim.schedule_daemon(10.0, beat);
  };
  sim.schedule_daemon(10.0, beat);
  sim.run_until(45.0);
  EXPECT_EQ(heartbeats, 4);  // t=10,20,30,40
  EXPECT_DOUBLE_EQ(sim.now(), 45.0);
}

TEST(Simulator, DaemonSpawnedWorkIsRealWork) {
  // A daemon that schedules a regular event extends the run until that
  // event fires.
  Simulator sim;
  int work = 0;
  sim.schedule_daemon(5.0, [&] { sim.schedule(100.0, [&] { ++work; }); });
  sim.schedule(10.0, [] {});  // keeps the run alive past the daemon
  sim.run();
  EXPECT_EQ(work, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 105.0);
}

TEST(Simulator, CancellingLastRegularEventEndsRun) {
  Simulator sim;
  int daemons = 0;
  std::function<void()> beat = [&] {
    ++daemons;
    sim.schedule_daemon(1.0, beat);
  };
  sim.schedule_daemon(1.0, beat);
  auto handle = sim.schedule(100.0, [] {});
  handle.cancel();
  sim.run();
  EXPECT_EQ(daemons, 0);  // nothing regular left: run exits immediately
}

TEST(Simulator, DeterministicAcrossInstancesWithSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<double> draws;
    std::function<void()> tick = [&] {
      draws.push_back(sim.rng().uniform());
      if (draws.size() < 50) sim.schedule(sim.rng().exponential(0.5), tick);
    };
    sim.schedule(0.1, tick);
    sim.run();
    return std::make_pair(draws, sim.now());
  };
  const auto a = run_once(1234);
  const auto b = run_once(1234);
  const auto c = run_once(4321);
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
  EXPECT_NE(a.first, c.first);
}

}  // namespace
}  // namespace peerlab::sim
