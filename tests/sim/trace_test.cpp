#include "peerlab/sim/trace.hpp"

#include <gtest/gtest.h>

#include "peerlab/common/check.hpp"
#include "peerlab/planetlab/deployment.hpp"

namespace peerlab::sim {
namespace {

TEST(Tracer, RecordsEventsInOrder) {
  Tracer tracer;
  tracer.record(1.0, TraceCategory::kNetwork, "a");
  tracer.record(2.0, TraceCategory::kTask, "b", "detail", 7, 9);
  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_DOUBLE_EQ(tracer.events()[0].time, 1.0);
  EXPECT_EQ(tracer.events()[1].label, "b");
  EXPECT_EQ(tracer.events()[1].detail, "detail");
  EXPECT_EQ(tracer.events()[1].a, 7u);
  EXPECT_EQ(tracer.events()[1].b, 9u);
  EXPECT_EQ(tracer.recorded(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RingDropsOldestWhenFull) {
  Tracer tracer(3);
  for (int i = 0; i < 5; ++i) {
    tracer.record(static_cast<double>(i), TraceCategory::kOther, std::to_string(i));
  }
  ASSERT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.events().front().label, "2");
  EXPECT_EQ(tracer.events().back().label, "4");
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_EQ(tracer.recorded(), 5u);
}

TEST(Tracer, FiltersByCategoryAndLabel) {
  Tracer tracer;
  tracer.record(1.0, TraceCategory::kNetwork, "x");
  tracer.record(2.0, TraceCategory::kTask, "x");
  tracer.record(3.0, TraceCategory::kTask, "y");
  EXPECT_EQ(tracer.count(TraceCategory::kTask), 2u);
  EXPECT_EQ(tracer.count(TraceCategory::kSelection), 0u);
  EXPECT_EQ(tracer.count_label("x"), 2u);
  EXPECT_EQ(tracer.by_category(TraceCategory::kNetwork).size(), 1u);
  EXPECT_EQ(tracer.by_label("y").size(), 1u);
}

TEST(Tracer, ClearResetsEverything) {
  Tracer tracer(2);
  tracer.record(1.0, TraceCategory::kOther, "a");
  tracer.record(1.0, TraceCategory::kOther, "b");
  tracer.record(1.0, TraceCategory::kOther, "c");
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, CsvHasHeaderAndOneLinePerEvent) {
  Tracer tracer;
  tracer.record(1.5, TraceCategory::kNetwork, "ev", "d", 1, 2);
  const std::string csv = tracer.csv();
  EXPECT_NE(csv.find("time,category,label,detail,a,b"), std::string::npos);
  EXPECT_NE(csv.find("1.5,network,ev,d,1,2"), std::string::npos);
}

TEST(Tracer, CategoryNames) {
  EXPECT_STREQ(to_string(TraceCategory::kNetwork), "network");
  EXPECT_STREQ(to_string(TraceCategory::kTransport), "transport");
  EXPECT_STREQ(to_string(TraceCategory::kOverlay), "overlay");
  EXPECT_STREQ(to_string(TraceCategory::kTask), "task");
  EXPECT_STREQ(to_string(TraceCategory::kSelection), "selection");
}

TEST(Tracer, RejectsZeroCapacity) { EXPECT_THROW(Tracer(0), InvariantError); }

TEST(Tracer, RingAccountingAcrossManyWraps) {
  Tracer tracer(4);
  for (int i = 0; i < 1000; ++i) {
    tracer.record(static_cast<double>(i), TraceCategory::kOther, std::to_string(i));
  }
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.recorded(), 1000u);
  EXPECT_EQ(tracer.dropped(), 996u);
  EXPECT_EQ(tracer.recorded() - tracer.dropped(), tracer.size());
  // The survivors are exactly the newest four, oldest first.
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].label, std::to_string(996 + i));
  }
}

TEST(Tracer, CsvQuotesSpecialCharacters) {
  Tracer tracer;
  tracer.record(1.0, TraceCategory::kOther, "plain", "a,b");
  tracer.record(2.0, TraceCategory::kOther, "say \"hi\"", "line1\nline2");
  const std::string csv = tracer.csv();
  EXPECT_NE(csv.find("plain,\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("\"line1\nline2\""), std::string::npos);
}

namespace {

/// Minimal conforming RFC-4180 reader: records of fields, quoted
/// fields may contain commas/newlines/doubled quotes.
std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      row.push_back(std::move(field));
      field.clear();
      rows.push_back(std::move(row));
      row.clear();
    } else {
      field.push_back(c);
    }
  }
  if (!field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

TEST(Tracer, CsvRoundTripsThroughConformingReader) {
  Tracer tracer;
  tracer.record(0.5, TraceCategory::kNetwork, "ev,1", "detail with \"quotes\"", 10, 20);
  tracer.record(1.5, TraceCategory::kTask, "multi\nline", "plain", 3, 4);
  tracer.record(2.5, TraceCategory::kOther, "", ",", 0, 0);

  const auto rows = parse_csv(tracer.csv());
  ASSERT_EQ(rows.size(), 4u);  // header + 3 events
  ASSERT_EQ(rows[0].size(), 6u);
  EXPECT_EQ(rows[0][2], "label");

  const auto events = tracer.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& row = rows[i + 1];
    ASSERT_EQ(row.size(), 6u);
    EXPECT_EQ(row[1], to_string(events[i].category));
    EXPECT_EQ(row[2], events[i].label);
    EXPECT_EQ(row[3], events[i].detail);
    EXPECT_EQ(row[4], std::to_string(events[i].a));
    EXPECT_EQ(row[5], std::to_string(events[i].b));
  }
}

// ---- integration: the subsystems actually emit ----

TEST(TracerIntegration, DeploymentEmitsNetworkTaskAndSelectionEvents) {
  sim::Simulator sim(9);
  planetlab::Deployment dep(sim);
  Tracer tracer;
  dep.network().set_tracer(&tracer);
  dep.sc(2).executor().set_tracer(&tracer);
  dep.boot();

  overlay::Primitives api(dep.control());
  core::SelectionContext ctx;
  api.select_peers(ctx, 1, [](std::vector<PeerId>) {});
  overlay::TaskSubmission sub;
  sub.executor = dep.sc_peer(2);
  sub.work = 10.0;
  dep.control().task_service().submit(sub, [](const overlay::TaskOutcome&) {});
  sim.run();

  EXPECT_GT(tracer.count_label("datagram-sent"), 0u);
  EXPECT_EQ(tracer.count_label("selection-served"), 1u);
  EXPECT_EQ(tracer.count_label("exec-start"), 1u);
  EXPECT_EQ(tracer.count_label("exec-done"), 1u);
  // Timeline is monotone.
  Seconds prev = 0.0;
  for (const auto& e : tracer.events()) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(TracerIntegration, BulkMessagesTraceDeliveryAndLoss) {
  sim::Simulator sim(31);
  planetlab::Deployment dep(sim);
  Tracer tracer;
  dep.network().set_tracer(&tracer);
  // SC7's loss rate guarantees some lost copies across many messages.
  int done = 0;
  for (int i = 0; i < 40; ++i) {
    sim.schedule(i * 500.0, [&] {
      dep.network().start_message(dep.control().node(), dep.sc(7).node(), megabytes(20.0),
                                  [&](bool, Seconds) { ++done; });
    });
  }
  sim.run();
  EXPECT_EQ(done, 40);
  EXPECT_EQ(tracer.count_label("message-start"), 40u);
  EXPECT_GT(tracer.count_label("message-lost"), 0u);
  EXPECT_GT(tracer.count_label("message-delivered"), 0u);
  EXPECT_EQ(tracer.count_label("message-lost") + tracer.count_label("message-delivered"),
            40u);
}

}  // namespace
}  // namespace peerlab::sim
