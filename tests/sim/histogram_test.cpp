#include "peerlab/sim/histogram.hpp"

#include <gtest/gtest.h>

#include "peerlab/common/check.hpp"
#include "peerlab/sim/rng.hpp"

namespace peerlab::sim {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, MergeEqualsPooledStream) {
  Rng r(31);
  Summary whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal(3.0, 2.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  Summary merged = left;
  merged.merge(right);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
}

TEST(Summary, MergeWithEmptySides) {
  Summary a, b;
  a.add(1.0);
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Histogram, BinsPartitionRange) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, SamplesLandInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.9);
  h.add(5.0);
  h.add(9.99);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(2), 1u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-3.0);
  h.add(42.0);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, QuantileOnUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng r(37);
  for (int i = 0; i < 50000; ++i) h.add(r.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileBounds) {
  Histogram h(0.0, 1.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty -> lo
  h.add(0.55);
  EXPECT_THROW((void)h.quantile(-0.1), InvariantError);
  EXPECT_THROW((void)h.quantile(1.1), InvariantError);
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), InvariantError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvariantError);
}

TEST(Histogram, RenderProducesOneLinePerBin) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5);
  const std::string art = h.render(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
}

}  // namespace
}  // namespace peerlab::sim
