// Randomized stress test for EventQueue against a brute-force oracle.
//
// The oracle keeps every live event as (time, push-order, handle) and
// answers "what must pop next" by linear scan. The real queue is driven
// through long random interleavings of push / rearm / cancel / pop —
// including pushes earlier than everything pending (which exercises the
// sorted window's ordered-insert path), duplicate times (FIFO ties),
// daemon accounting, bulk bursts big enough to force the radix refill
// path, and slot pool reuse. Rearms hit both the in-place replacement
// (old entry in the sorted window) and the re-slotting fallback (old
// entry deep in the unsorted batch); the oracle models a rearm as a
// fresh push order, which is the documented cancel+push equivalence.
// Handles are checked for the stale-after-fire guarantees.

#include "peerlab/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace peerlab::sim {
namespace {

struct ModelEvent {
  double time = 0.0;
  std::uint64_t order = 0;  // global push counter: FIFO tie-break oracle
  std::uint64_t id = 0;     // fired payload; stable across rearms
  bool daemon = false;
};

TEST(EventQueueStress, RandomInterleavingsMatchOracle) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EventQueue queue;
    std::mt19937_64 rng(seed);
    const auto pick = [&](int lo, int hi) {
      return std::uniform_int_distribution<int>(lo, hi)(rng);
    };
    // A coarse grid makes same-time collisions (FIFO ties) and pushes
    // below the current minimum frequent.
    const auto pick_time = [&] { return 0.25 * pick(0, 40); };

    struct Tracked {
      EventHandle handle;
      ModelEvent event;
    };
    std::vector<Tracked> live;
    std::vector<std::uint64_t> fired;
    std::uint64_t next_order = 0;

    const auto push = [&](double time, bool daemon) {
      const std::uint64_t order = next_order++;
      EventHandle handle = queue.push(time, [&fired, order] { fired.push_back(order); }, daemon);
      EXPECT_TRUE(handle.pending());
      live.push_back(Tracked{std::move(handle), ModelEvent{time, order, order, daemon}});
    };
    const auto oracle_min = [&] {
      std::size_t best = 0;
      for (std::size_t i = 1; i < live.size(); ++i) {
        const ModelEvent& a = live[i].event;
        const ModelEvent& b = live[best].event;
        if (a.time < b.time || (a.time == b.time && a.order < b.order)) best = i;
      }
      return best;
    };
    const auto pop_and_verify = [&] {
      const std::size_t best = oracle_min();
      ASSERT_EQ(live[best].event.time, queue.next_time());
      auto popped = queue.pop();
      ASSERT_EQ(live[best].event.time, popped.time);
      ASSERT_TRUE(static_cast<bool>(popped.action));
      popped.action();
      ASSERT_FALSE(fired.empty());
      ASSERT_EQ(live[best].event.id, fired.back());
      // A fired event's handle must go stale: pending() false and
      // cancel() a harmless no-op that does not disturb counters.
      EXPECT_FALSE(live[best].handle.pending());
      const std::size_t size_before = queue.size();
      live[best].handle.cancel();
      EXPECT_EQ(size_before, queue.size());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(best));
    };

    for (int op = 0; op < 30000; ++op) {
      const int what = pick(0, 9);
      if (what <= 3) {
        push(pick_time(), /*daemon=*/pick(0, 4) == 0);
      } else if (what == 4 && pick(0, 60) == 0) {
        // Bulk burst: enough unsorted backlog that the next drain runs
        // the radix path, with plenty of duplicate times.
        const int n = pick(100, 400);
        for (int i = 0; i < n; ++i) push(pick_time(), false);
      } else if (what == 5 && !live.empty()) {
        // Rearm a uniformly random live event to a fresh time. The
        // model takes a new push order: FIFO among equal times must
        // behave exactly as if the event were cancelled and re-pushed.
        const std::size_t i =
            static_cast<std::size_t>(pick(0, static_cast<int>(live.size()) - 1));
        const double time = pick_time();
        queue.rearm(live[i].handle, time);
        EXPECT_TRUE(live[i].handle.pending());
        live[i].event.time = time;
        live[i].event.order = next_order++;
      } else if (what <= 7 && !live.empty()) {
        // Cancel a uniformly random live event: ones deep in the
        // unsorted batch, ones at the queue head, double-cancels.
        const std::size_t i =
            static_cast<std::size_t>(pick(0, static_cast<int>(live.size()) - 1));
        live[i].handle.cancel();
        EXPECT_FALSE(live[i].handle.pending());
        live[i].handle.cancel();  // double-cancel must be a no-op
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (!live.empty()) {
        pop_and_verify();
      }
      ASSERT_EQ(live.size(), queue.size());
      ASSERT_EQ(live.empty(), queue.empty());
      const bool any_regular = std::any_of(
          live.begin(), live.end(), [](const Tracked& t) { return !t.event.daemon; });
      ASSERT_EQ(any_regular, queue.has_work());
    }

    // Drain fully: pops must come out globally (time, order)-sorted.
    while (!live.empty()) pop_and_verify();
    EXPECT_TRUE(queue.empty());
    EXPECT_FALSE(queue.has_work());
  }
}

TEST(EventQueueStress, BulkDrainKeepsFifoAmongTies) {
  EventQueue queue;
  std::vector<int> fired;
  // 5000 events over just 7 distinct times: long FIFO runs that a
  // non-stable refill sort would scramble.
  for (int i = 0; i < 5000; ++i) {
    queue.push(static_cast<double>(i % 7), [&fired, i] { fired.push_back(i); });
  }
  while (!queue.empty()) queue.pop().action();
  ASSERT_EQ(5000u, fired.size());
  double last_time = -1.0;
  int last_within = -1;
  for (const int i : fired) {
    const double t = static_cast<double>(i % 7);
    if (t != last_time) {
      ASSERT_LT(last_time, t);
      last_time = t;
      last_within = i;
    } else {
      ASSERT_LT(last_within, i) << "FIFO order violated at time " << t;
      last_within = i;
    }
  }
}

// Slot pool reuse: cycling far more events than are ever concurrently
// live must recycle slots (generation counters) and keep every stale
// handle inert.
TEST(EventQueueStress, PoolReuseKeepsHandlesStale) {
  EventQueue queue;
  std::vector<EventHandle> old_handles;
  int fired = 0;
  for (int wave = 0; wave < 200; ++wave) {
    for (int i = 0; i < 32; ++i) {
      old_handles.push_back(queue.push(static_cast<double>(wave), [&fired] { ++fired; }));
    }
    for (int i = 0; i < 32; ++i) queue.pop().action();
  }
  EXPECT_EQ(200 * 32, fired);
  EXPECT_EQ(static_cast<std::uint64_t>(200 * 32), queue.total_pushed());
  for (EventHandle& handle : old_handles) {
    EXPECT_FALSE(handle.pending());
    // Cancelling through a recycled slot's old generation must be a
    // counted no-op, never a hit on the slot's current occupant.
    const std::size_t size_before = queue.size();
    handle.cancel();
    EXPECT_EQ(size_before, queue.size());
  }
  EXPECT_TRUE(queue.empty());
}

// Handles must stay safe no-ops after the queue itself is destroyed
// (they share the pool's lifetime, not the queue's).
TEST(EventQueueStress, HandlesOutliveQueue) {
  EventHandle survivor;
  {
    EventQueue queue;
    survivor = queue.push(1.0, [] {});
    EXPECT_TRUE(survivor.pending());
  }
  EXPECT_FALSE(survivor.pending());
  survivor.cancel();  // must not crash or touch freed memory
}

}  // namespace
}  // namespace peerlab::sim
