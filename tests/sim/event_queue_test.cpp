#include "peerlab/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "peerlab/common/check.hpp"

namespace peerlab::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PopReportsEventTime) {
  EventQueue q;
  q.push(7.25, [] {});
  auto fired = q.pop();
  EXPECT_DOUBLE_EQ(fired.time, 7.25);
}

TEST(EventQueue, NextTimeSeesEarliestLiveEvent) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  h.cancel();
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, CancelledEventNeverFires) {
  EventQueue q;
  bool fired = false;
  auto h = q.push(1.0, [&] { fired = true; });
  h.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeOnEmptyHandle) {
  EventHandle empty;
  empty.cancel();  // no crash
  EXPECT_FALSE(empty.pending());

  EventQueue q;
  auto h = q.push(1.0, [] {});
  h.cancel();
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, HandleReportsPendingLifecycle) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  EXPECT_TRUE(h.pending());
  q.pop().action();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, CancelBuriedEventSkipsIt) {
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(1); });
  auto h = q.push(2.0, [&] { order.push_back(2); });
  q.push(3.0, [&] { order.push_back(3); });
  h.cancel();
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, RejectsNegativeTime) {
  EventQueue q;
  EXPECT_THROW(q.push(-1.0, [] {}), InvariantError);
}

TEST(EventQueue, RejectsNonFiniteTime) {
  EventQueue q;
  EXPECT_THROW(q.push(std::numeric_limits<double>::infinity(), [] {}), InvariantError);
  EXPECT_THROW(q.push(std::numeric_limits<double>::quiet_NaN(), [] {}), InvariantError);
}

TEST(EventQueue, RejectsEmptyAction) {
  EventQueue q;
  EXPECT_THROW(q.push(1.0, Action{}), InvariantError);
}

TEST(EventQueue, TotalPushedCounts) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.push(1.0, [] {});
  EXPECT_EQ(q.total_pushed(), 5u);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<double> times;
  // Deliberately interleaved pushes with duplicate times.
  for (int i = 0; i < 1000; ++i) {
    q.push(static_cast<double>((i * 7919) % 101), [] {});
  }
  double last = -1.0;
  while (!q.empty()) {
    auto fired = q.pop();
    EXPECT_GE(fired.time, last);
    last = fired.time;
  }
}

TEST(EventQueue, RearmMovesEventAndKeepsAction) {
  EventQueue q;
  std::vector<int> order;
  auto h = q.push(5.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  q.rearm(h, 1.0);
  EXPECT_TRUE(h.pending());
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RearmToSameTimeFiresAfterExistingTies) {
  // A rearmed event takes a fresh sequence number, so among equal times
  // it must fire last — exactly where cancel + re-push would put it.
  EventQueue q;
  std::vector<int> order;
  auto h = q.push(1.0, [&] { order.push_back(0); });
  q.push(3.0, [&] { order.push_back(1); });
  q.push(3.0, [&] { order.push_back(2); });
  q.rearm(h, 3.0);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(EventQueue, RearmCancelledByHandleNeverFires) {
  EventQueue q;
  bool fired = false;
  auto h = q.push(1.0, [&] { fired = true; });
  q.push(2.0, [] {});
  q.rearm(h, 3.0);
  h.cancel();
  EXPECT_FALSE(h.pending());
  while (!q.empty()) q.pop().action();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, RearmReachesEventsBeyondSortedWindow) {
  // Push enough backlog that later pushes land in the unsorted far
  // list, then rearm one of those: this takes the re-slotting fallback,
  // which must rebind the handle and keep counts exact.
  EventQueue q;
  std::vector<double> times;
  q.push(1.0, [] {});
  q.pop();  // seeds the sorted window's limit at 1.0
  std::vector<EventHandle> handles;
  bool fired = false;
  for (int i = 0; i < 50; ++i) {
    handles.push_back(q.push(10.0 + i, [] {}));
  }
  auto h = q.push(100.0, [&] { fired = true; });
  q.rearm(h, 2.0);
  EXPECT_TRUE(h.pending());
  EXPECT_EQ(q.size(), 51u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  q.pop().action();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, RearmPreservesDaemonFlag) {
  EventQueue q;
  auto h = q.push(1.0, [] {}, /*daemon=*/true);
  EXPECT_FALSE(q.has_work());
  q.rearm(h, 2.0);
  EXPECT_FALSE(q.has_work());
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RearmRejectsBadTimeAndDeadHandle) {
  EventQueue q;
  auto h = q.push(1.0, [] {});
  EXPECT_THROW(q.rearm(h, -1.0), InvariantError);
  h.cancel();
  EXPECT_THROW(q.rearm(h, 2.0), InvariantError);
}

}  // namespace
}  // namespace peerlab::sim
