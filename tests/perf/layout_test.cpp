// Layout guards for the hot-path structs. The perf work in DESIGN.md
// §13 depends on concrete sizes and alignments — one EventSlot per
// cache line, two FlowScheduler::Links per line, SoA slabs of plain
// doubles — and a quiet regression (a well-meaning new field, a
// compiler padding surprise) would silently halve the cache density
// the benchmarks were tuned against. Everything here is a compile-time
// fact; the TESTs exist so a violation shows up as a named tier-1
// failure instead of a scattered static_assert error.
//
// FlowScheduler::Links and EventQueue::Entry are private, so their
// guards live as static_asserts next to the definitions
// (flow_scheduler.hpp, event_queue.hpp); this file covers the types
// that are reachable from the outside.

#include <gtest/gtest.h>

#include <cstddef>
#include <type_traits>

#include "peerlab/core/selection_model.hpp"
#include "peerlab/mem/small_vector.hpp"
#include "peerlab/sim/event_queue.hpp"

namespace peerlab {
namespace {

// One pooled event per cache line: neighbouring slots must never share
// a line (see EventSlot's comment), and slot index << 6 is the line
// address arithmetic the pool relies on.
static_assert(sizeof(sim::detail::EventSlot) == 64);
static_assert(alignof(sim::detail::EventSlot) == 64);

// The selection models sort slabs of ScoredPeer in the petition hot
// loop; 16 bytes keeps four entries per cache line and the pair swap
// branch-free in std::sort.
static_assert(sizeof(core::ScoredPeer) == 16);
static_assert(std::is_trivially_copyable_v<core::ScoredPeer>);

// small_vector must not pad its inline buffer: N inline elements, the
// pointer/size/capacity header, and nothing else.
static_assert(sizeof(mem::small_vector<std::uint64_t, 8>) ==
              8 * sizeof(std::uint64_t) + 3 * sizeof(void*));
static_assert(alignof(mem::small_vector<double, 4>) >= alignof(double));

TEST(Layout, EventSlotIsOneCacheLine) {
  EXPECT_EQ(64u, sizeof(sim::detail::EventSlot));
  EXPECT_EQ(64u, alignof(sim::detail::EventSlot));
}

TEST(Layout, ScoredPeerPacksFourPerLine) {
  EXPECT_EQ(16u, sizeof(core::ScoredPeer));
  EXPECT_EQ(0u, offsetof(core::ScoredPeer, peer));
}

TEST(Layout, SmallVectorInlineBufferIsTight) {
  using V = mem::small_vector<std::uint64_t, 8>;
  EXPECT_EQ(8 * sizeof(std::uint64_t) + 3 * sizeof(void*), sizeof(V));
}

}  // namespace
}  // namespace peerlab
