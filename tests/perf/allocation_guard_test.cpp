// Zero-steady-state-allocation guarantees, enforced by instrumenting
// the global allocator.
//
// The event queue and the flow scheduler both promise that once warmed
// to a workload's high-water mark, their hot paths (push/cancel/pop,
// start/cancel/recompute/complete) never touch the heap: scratch
// buffers are reused, free lists are pre-reserved on the growth path,
// and actions live in pooled slots. This test replaces global
// operator new/delete with counting versions and asserts an exact
// zero allocation count across the steady-state phases.
//
// Counting is toggled around the measured region only, so gtest's own
// bookkeeping stays out of the numbers. The whole binary is
// single-threaded; plain counters are fine.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "peerlab/core/blind.hpp"
#include "peerlab/core/data_evaluator.hpp"
#include "peerlab/core/economic.hpp"
#include "peerlab/core/hybrid.hpp"
#include "peerlab/core/user_preference.hpp"
#include "peerlab/net/flow_scheduler.hpp"
#include "peerlab/net/topology.hpp"
#include "peerlab/sim/simulator.hpp"

namespace {

std::size_t g_allocations = 0;
bool g_tracking = false;

void* counted_alloc(std::size_t size) {
  if (g_tracking) ++g_allocations;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  if (g_tracking) ++g_allocations;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace peerlab {
namespace {

class AllocationGuard {
 public:
  AllocationGuard() {
    g_allocations = 0;
    g_tracking = true;
  }
  ~AllocationGuard() { g_tracking = false; }
  [[nodiscard]] std::size_t count() const { return g_allocations; }
};

TEST(AllocationGuard, EventQueueSteadyStateIsAllocationFree) {
  sim::EventQueue queue;
  std::uint64_t fired = 0;

  // Warm to the high-water mark: more concurrent events, and a bigger
  // unsorted backlog, than the measured phase ever reaches.
  for (int wave = 0; wave < 4; ++wave) {
    std::vector<sim::EventHandle> handles;
    for (int i = 0; i < 2048; ++i) {
      handles.push_back(
          queue.push(static_cast<double>((i * 7919) % 257), [&fired] { ++fired; }));
    }
    for (int i = 0; i < 2048; i += 3) handles[static_cast<std::size_t>(i)].cancel();
    while (!queue.empty()) queue.pop().action();
  }

  AllocationGuard guard;
  // Bulk cycle: batch push (radix refill path), scattered cancels,
  // full drain — twice.
  for (int wave = 0; wave < 2; ++wave) {
    sim::EventHandle cancelled[64];
    for (int i = 0; i < 1024; ++i) {
      auto handle = queue.push(static_cast<double>((i * 31) % 97), [&fired] { ++fired; });
      if (i % 16 == 0) cancelled[i / 16] = std::move(handle);
    }
    for (auto& handle : cancelled) handle.cancel();
    while (!queue.empty()) queue.pop().action();
  }
  // Chain cycle: the pop-one/push-one cadence of timers.
  double t = 1000.0;
  queue.push(t, [&fired] { ++fired; });
  for (int i = 0; i < 4096; ++i) {
    queue.pop().action();
    t += 0.25;
    queue.push(t, [&fired] { ++fired; });
  }
  queue.pop().action();
  const std::size_t allocations = guard.count();
  EXPECT_EQ(0u, allocations) << "EventQueue steady state allocated";
  EXPECT_GT(fired, 0u);
}

TEST(AllocationGuard, FlowSchedulerSteadyStateIsAllocationFree) {
  sim::Simulator sim(1);
  net::Topology topo(sim::Rng(1));
  std::vector<NodeId> nodes;
  for (int i = 0; i < 24; ++i) {
    net::NodeProfile profile;
    profile.hostname = "n" + std::to_string(i);
    profile.uplink_mbps = 4.0 + i % 5;
    profile.downlink_mbps = 8.0 + i % 7;
    nodes.push_back(topo.add_node(profile));
  }
  net::FlowScheduler scheduler(sim, topo);
  std::uint64_t completed = 0;

  const auto spawn = [&](int i, Bytes size) {
    net::FlowSpec spec;
    spec.src = nodes[static_cast<std::size_t>(i) % nodes.size()];
    spec.dst = nodes[static_cast<std::size_t>(i * 7 + 1) % nodes.size()];
    if (spec.src == spec.dst) spec.dst = nodes[(static_cast<std::size_t>(i) + 1) % nodes.size()];
    spec.size = size;
    spec.rate_cap = i % 3 == 0 ? 2.5 : 0.0;
    spec.on_complete = [&completed](Seconds) { ++completed; };
    return scheduler.start(std::move(spec));
  };

  // Warm: more concurrent flows than the measured phase uses, with
  // cancels and completions, so every slot vector, scratch buffer,
  // index table and the simulator's event pool reach their high-water
  // marks.
  const auto measured_round = [&](int round) {
    FlowId ids[48];
    for (int i = 0; i < 48; ++i) ids[i] = spawn(i + round, kilobytes(64.0));
    for (int i = 0; i < 48; i += 3) scheduler.cancel(ids[i]);
    sim.run();  // drive every remaining flow to completion
  };
  {
    std::vector<FlowId> warm;
    for (int i = 0; i < 96; ++i) warm.push_back(spawn(i, megabytes(1.0)));
    for (int i = 0; i < 96; i += 2) scheduler.cancel(warm[static_cast<std::size_t>(i)]);
    sim.run();
    ASSERT_EQ(0u, scheduler.active_flows());
    // One measured-shape round too: completion batching (the `done_`
    // staging buffer) depends on how many same-instant completions a
    // round produces, so warm with the exact shape being measured.
    measured_round(0);
  }

  AllocationGuard guard;
  for (int round = 0; round < 8; ++round) measured_round(round);
  const std::size_t allocations = guard.count();
  EXPECT_EQ(0u, allocations) << "FlowScheduler steady state allocated";
  EXPECT_GT(completed, 0u);
  EXPECT_EQ(0u, scheduler.active_flows());
}

TEST(AllocationGuard, SelectionModelsPetitionPathIsAllocationFree) {
  // Synthetic candidate pool; everything that allocates (hostnames,
  // the snapshot vector itself) is built before the guard arms.
  std::vector<core::PeerSnapshot> pool;
  std::vector<PeerId> preference;
  for (int i = 0; i < 16; ++i) {
    core::PeerSnapshot s;
    s.peer = PeerId(static_cast<std::uint64_t>(i + 1));
    s.node = NodeId(static_cast<std::uint64_t>(i + 100));
    s.hostname = "peer-" + std::to_string(i);
    s.cpu_ghz = 1.0 + (i % 5) * 0.6;
    s.price_per_cpu_second = 0.5 + (i % 3) * 0.25;
    s.idle = i % 4 != 0;
    s.queued_tasks = i % 3;
    s.active_transfers = i % 2;
    pool.push_back(std::move(s));
    preference.push_back(PeerId(static_cast<std::uint64_t>(i + 1)));
  }

  // All five models behind the common interface; each keeps its own
  // arena and ranking buffer, so each must be warmed and soaked.
  core::BlindModel blind;
  core::EconomicSchedulingModel economic;
  core::DataEvaluatorModel evaluator = core::DataEvaluatorModel::same_priority();
  core::HybridModel hybrid;
  core::UserPreferenceModel user_pref(preference);
  core::SelectionModel* models[] = {&blind, &economic, &evaluator, &hybrid, &user_pref};

  core::SelectionContext ctx;
  ctx.purpose = core::SelectionContext::Purpose::kFileTransfer;
  ctx.payload_size = megabytes(10.0);
  ctx.exclude.reserve(4);

  std::vector<PeerId> out;
  std::uint64_t picks = 0;
  const auto petition = [&](core::SelectionModel& model, int i) {
    ctx.now = static_cast<Seconds>(i);
    ctx.purpose = i % 2 == 0 ? core::SelectionContext::Purpose::kFileTransfer
                             : core::SelectionContext::Purpose::kTaskExecution;
    ctx.work = i % 2 == 0 ? 0.0 : 40.0;
    ctx.exclude.clear();
    ctx.exclude.push_back(pool[static_cast<std::size_t>(i) % pool.size()].peer);
    model.rank_into(pool, ctx, out);
    // select() exercises the internal ranking buffer too. Both calls
    // count as petitions (the blind model's round-robin cursor moves
    // per call, so their winners are not compared).
    picks += model.select(pool, ctx).value();
    picks += out.size();
  };

  // Warm: arenas grow to the petition's high-water mark, `out` and the
  // models' internal ranking buffers reach capacity.
  for (auto* model : models) {
    for (int i = 0; i < 8; ++i) petition(*model, i);
  }

  AllocationGuard guard;
  for (auto* model : models) {
    for (int i = 0; i < 1000; ++i) petition(*model, i);
  }
  const std::size_t allocations = guard.count();
  EXPECT_EQ(0u, allocations) << "selection petition path allocated";
  EXPECT_GT(picks, 0u);
}

}  // namespace
}  // namespace peerlab
