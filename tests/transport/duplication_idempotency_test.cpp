// Datagram duplication (the mirror of datagram_loss): duplicated
// control datagrams must be harmless — ReliableChannel responders
// re-serve, requesters dedup by seq, every request completes exactly
// once, and a whole file transfer survives a heavily duplicating
// control plane.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "peerlab/transport/file_transfer.hpp"
#include "peerlab/transport/reliable_channel.hpp"

namespace peerlab::transport {
namespace {

struct World {
  explicit World(double duplication, std::uint64_t seed = 1) : sim(seed) {
    net::Topology topo(sim.rng().fork(1));
    for (const char* name : {"client", "server"}) {
      net::NodeProfile p;
      p.hostname = name;
      p.control_delay_mean = 0.05;
      p.control_delay_sigma = 0.01;  // duplicates can overtake originals
      p.loss_per_megabyte = 0.0;
      p.uplink_mbps = 8.0;
      p.downlink_mbps = 8.0;
      topo.add_node(p);
    }
    net::NetworkConfig cfg;
    cfg.datagram_duplication = duplication;
    network.emplace(sim, std::move(topo), cfg);
    fabric.emplace(*network);
  }
  sim::Simulator sim;
  std::optional<net::Network> network;
  std::optional<TransportFabric> fabric;
};

RetryPolicy fast_retry() {
  RetryPolicy p;
  p.initial_timeout = 1.0;
  p.backoff = 1.5;
  p.max_attempts = 6;
  return p;
}

TEST(Duplication, KnobOffDuplicatesNothing) {
  World w(0.0);
  int delivered = 0;
  for (int i = 0; i < 50; ++i) {
    w.network->send_datagram(NodeId(1), NodeId(2), kilobytes(1.0), [&] { ++delivered; });
  }
  w.sim.run();
  EXPECT_EQ(delivered, 50);
  EXPECT_EQ(w.network->datagrams_duplicated(), 0u);
}

TEST(Duplication, DuplicatedDatagramsDeliverTwice) {
  World w(1.0 - 1e-9);  // ~every datagram duplicated
  int delivered = 0;
  for (int i = 0; i < 20; ++i) {
    w.network->send_datagram(NodeId(1), NodeId(2), kilobytes(1.0), [&] { ++delivered; });
  }
  w.sim.run();
  EXPECT_EQ(delivered, 40);
  EXPECT_EQ(w.network->datagrams_duplicated(), 20u);
}

TEST(Duplication, EveryRequestCompletesExactlyOnceUnderDuplication) {
  World w(0.4, /*seed=*/7);
  Endpoint& client = w.fabric->attach(NodeId(1));
  Endpoint& server = w.fabric->attach(NodeId(2));
  ReliableChannel req(client, MessageType::kChat, MessageType::kChatAck, fast_retry());
  ReliableChannel resp(server, MessageType::kChat, MessageType::kChatAck, fast_retry());
  int served = 0;
  resp.serve([&](const Message& m) {
    ++served;
    server.reply(m, MessageType::kChatAck, static_cast<std::int64_t>(m.correlation));
  });

  constexpr int kRequests = 50;
  std::vector<int> completions(kRequests, 0);
  for (int i = 0; i < kRequests; ++i) {
    req.request(NodeId(2), static_cast<std::uint64_t>(i), 0,
                [&, i](const RequestOutcome& o) {
                  ASSERT_TRUE(o.ok);
                  EXPECT_EQ(o.response.arg, static_cast<std::int64_t>(i));
                  ++completions[static_cast<std::size_t>(i)];
                });
  }
  w.sim.run();
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(completions[static_cast<std::size_t>(i)], 1) << "request " << i;
  }
  // The responder really saw duplicates (re-served them idempotently)
  // and the network really minted them.
  EXPECT_GT(served, kRequests);
  EXPECT_GT(w.network->datagrams_duplicated(), 0u);
  EXPECT_EQ(req.outstanding(), 0u);
}

TEST(Duplication, FileTransferCompletesOverADuplicatingControlPlane) {
  World w(0.4, /*seed=*/11);
  FileTransferDirectory directory;
  FileTransferPeer sender(w.fabric->attach(NodeId(1)), directory);
  FileTransferPeer receiver(w.fabric->attach(NodeId(2)), directory);

  FileTransferConfig cfg;
  cfg.file_size = megabytes(2.0);
  cfg.parts = 4;
  std::optional<TransferResult> result;
  int resolutions = 0;
  sender.send_file(NodeId(2), cfg, [&](const TransferResult& r) {
    result = r;
    ++resolutions;
  });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(resolutions, 1);  // duplicated confirms never double-complete
  EXPECT_GT(w.network->datagrams_duplicated(), 0u);
}

TEST(Duplication, RejectsOutOfRangeProbability) {
  sim::Simulator sim(1);
  net::Topology topo(sim.rng().fork(1));
  net::NodeProfile p;
  p.hostname = "a";
  topo.add_node(p);
  net::NetworkConfig cfg;
  cfg.datagram_duplication = 1.0;
  EXPECT_THROW(net::Network(sim, std::move(topo), cfg), InvariantError);
}

}  // namespace
}  // namespace peerlab::transport
