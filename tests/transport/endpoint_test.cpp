#include "peerlab/transport/endpoint.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "peerlab/common/check.hpp"

namespace peerlab::transport {
namespace {

struct World {
  World() {
    net::Topology topo(sim.rng().fork(1));
    for (const char* name : {"a", "b", "c"}) {
      net::NodeProfile p;
      p.hostname = name;
      p.control_delay_mean = 0.05;
      p.control_delay_sigma = 0.0;
      p.loss_per_megabyte = 0.0;
      topo.add_node(p);
    }
    net::NetworkConfig cfg;
    cfg.datagram_loss = 0.0;
    network.emplace(sim, std::move(topo), cfg);
    fabric.emplace(*network);
  }
  sim::Simulator sim{1};
  std::optional<net::Network> network;
  std::optional<TransportFabric> fabric;
};

TEST(Endpoint, AttachIsIdempotent) {
  World w;
  Endpoint& e1 = w.fabric->attach(NodeId(1));
  Endpoint& e2 = w.fabric->attach(NodeId(1));
  EXPECT_EQ(&e1, &e2);
  EXPECT_TRUE(w.fabric->attached(NodeId(1)));
  EXPECT_FALSE(w.fabric->attached(NodeId(2)));
}

TEST(Endpoint, AttachToUnknownNodeThrows) {
  World w;
  EXPECT_THROW(w.fabric->attach(NodeId(42)), InvariantError);
}

TEST(Endpoint, EndpointLookupThrowsWhenUnattached) {
  World w;
  EXPECT_THROW((void)w.fabric->endpoint(NodeId(1)), InvariantError);
}

TEST(Endpoint, MessageReachesHandlerWithFields) {
  World w;
  Endpoint& a = w.fabric->attach(NodeId(1));
  Endpoint& b = w.fabric->attach(NodeId(2));
  std::optional<Message> got;
  b.set_handler(MessageType::kChat, [&](const Message& m) { got = m; });
  a.send(NodeId(2), MessageType::kChat, /*correlation=*/77, /*seq=*/3, /*arg=*/-5);
  w.sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, NodeId(1));
  EXPECT_EQ(got->dst, NodeId(2));
  EXPECT_EQ(got->type, MessageType::kChat);
  EXPECT_EQ(got->correlation, 77u);
  EXPECT_EQ(got->seq, 3u);
  EXPECT_EQ(got->arg, -5);
  EXPECT_TRUE(got->id.valid());
}

TEST(Endpoint, DeliveryTakesControlPlaneTime) {
  World w;
  Endpoint& a = w.fabric->attach(NodeId(1));
  Endpoint& b = w.fabric->attach(NodeId(2));
  Seconds arrival = -1.0;
  b.set_handler(MessageType::kHeartbeat, [&](const Message&) { arrival = w.sim.now(); });
  a.send(NodeId(2), MessageType::kHeartbeat);
  w.sim.run();
  EXPECT_GT(arrival, 0.04);  // control delay dominates
  EXPECT_LT(arrival, 0.2);
}

TEST(Endpoint, UnhandledTypesAreCountedNotFatal) {
  World w;
  Endpoint& a = w.fabric->attach(NodeId(1));
  w.fabric->attach(NodeId(2));
  a.send(NodeId(2), MessageType::kChat);
  w.sim.run();
  EXPECT_EQ(w.fabric->endpoint(NodeId(2)).delivered_count(), 1u);
  EXPECT_EQ(w.fabric->endpoint(NodeId(2)).unhandled_count(), 1u);
}

TEST(Endpoint, MessageToUnattachedNodeEvaporates) {
  World w;
  Endpoint& a = w.fabric->attach(NodeId(1));
  a.send(NodeId(3), MessageType::kChat);
  w.sim.run();  // must not crash
  SUCCEED();
}

TEST(Endpoint, ReplyEchoesCorrelationAndSeq) {
  World w;
  Endpoint& a = w.fabric->attach(NodeId(1));
  Endpoint& b = w.fabric->attach(NodeId(2));
  std::optional<Message> response;
  a.set_handler(MessageType::kChatAck, [&](const Message& m) { response = m; });
  b.set_handler(MessageType::kChat,
                [&](const Message& m) { b.reply(m, MessageType::kChatAck, 99); });
  a.send(NodeId(2), MessageType::kChat, 55, 7);
  w.sim.run();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->correlation, 55u);
  EXPECT_EQ(response->seq, 7u);
  EXPECT_EQ(response->arg, 99);
  EXPECT_EQ(response->src, NodeId(2));
}

TEST(Endpoint, HandlerReplacementTakesEffect) {
  World w;
  Endpoint& a = w.fabric->attach(NodeId(1));
  Endpoint& b = w.fabric->attach(NodeId(2));
  int first = 0, second = 0;
  b.set_handler(MessageType::kChat, [&](const Message&) { ++first; });
  b.set_handler(MessageType::kChat, [&](const Message&) { ++second; });
  a.send(NodeId(2), MessageType::kChat);
  w.sim.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(Endpoint, ClearedHandlerStopsDispatch) {
  World w;
  Endpoint& a = w.fabric->attach(NodeId(1));
  Endpoint& b = w.fabric->attach(NodeId(2));
  int count = 0;
  b.set_handler(MessageType::kChat, [&](const Message&) { ++count; });
  b.clear_handler(MessageType::kChat);
  a.send(NodeId(2), MessageType::kChat);
  w.sim.run();
  EXPECT_EQ(count, 0);
  EXPECT_EQ(b.unhandled_count(), 1u);
}

TEST(Endpoint, MessagesGetUniqueIds) {
  World w;
  Endpoint& a = w.fabric->attach(NodeId(1));
  Endpoint& b = w.fabric->attach(NodeId(2));
  std::vector<MessageId> ids;
  b.set_handler(MessageType::kChat, [&](const Message& m) { ids.push_back(m.id); });
  for (int i = 0; i < 5; ++i) a.send(NodeId(2), MessageType::kChat);
  w.sim.run();
  ASSERT_EQ(ids.size(), 5u);
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_NE(ids[i - 1], ids[i]);
  }
}

TEST(Endpoint, EmptyHandlerRejected) {
  World w;
  Endpoint& a = w.fabric->attach(NodeId(1));
  EXPECT_THROW(a.set_handler(MessageType::kChat, Endpoint::Handler{}), InvariantError);
}

}  // namespace
}  // namespace peerlab::transport
