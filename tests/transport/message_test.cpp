#include "peerlab/transport/message.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace peerlab::transport {
namespace {

const MessageType kAllTypes[] = {
    MessageType::kTransferPetition, MessageType::kTransferPetitionAck,
    MessageType::kPartConfirm,      MessageType::kConfirmQuery,
    MessageType::kTaskOffer,        MessageType::kTaskAccept,
    MessageType::kTaskReject,       MessageType::kTaskResult,
    MessageType::kTaskResultAck,    MessageType::kHeartbeat,
    MessageType::kStatsReport,      MessageType::kDiscoveryQuery,
    MessageType::kDiscoveryResponse, MessageType::kGroupJoin,
    MessageType::kGroupJoinAck,     MessageType::kGroupLeave,
    MessageType::kChat,             MessageType::kChatAck,
    MessageType::kPipeResolve,      MessageType::kPipeResolveAck,
    MessageType::kPipeData,         MessageType::kSelectRequest,
    MessageType::kSelectResponse,
};

TEST(MessageType, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (const auto t : kAllTypes) {
    const std::string name = to_string(t);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

TEST(MessageType, NominalSizesAreControlScale) {
  for (const auto t : kAllTypes) {
    const Bytes size = nominal_size(t);
    EXPECT_GT(size, 0);
    EXPECT_LE(size, 64 * kKilobyte) << to_string(t) << " must stay degradation-exempt";
  }
}

TEST(MessageType, PetitionCarriesAdvertisementPayload) {
  EXPECT_GT(nominal_size(MessageType::kTransferPetition),
            nominal_size(MessageType::kPartConfirm));
}

TEST(Message, DefaultsAreInert) {
  Message m;
  EXPECT_FALSE(m.id.valid());
  EXPECT_FALSE(m.src.valid());
  EXPECT_EQ(m.correlation, 0u);
  EXPECT_EQ(m.seq, 0u);
  EXPECT_EQ(m.arg, 0);
}

}  // namespace
}  // namespace peerlab::transport
