// RetryPolicy jitter: full-jitter backoff desynchronizes retry storms
// without giving up determinism — the factor is a pure hash of
// (endpoint, channel, seq, attempt), so a seeded run replays exactly
// and jitter 0 keeps the historical schedule bit-for-bit.

#include "peerlab/transport/reliable_channel.hpp"

#include <gtest/gtest.h>

#include <optional>

namespace peerlab::transport {
namespace {

struct World {
  explicit World(std::uint64_t seed = 1) : sim(seed) {
    net::Topology topo(sim.rng().fork(1));
    for (const char* name : {"client", "server", "second"}) {
      net::NodeProfile p;
      p.hostname = name;
      p.control_delay_mean = 0.05;
      p.control_delay_sigma = 0.0;
      p.loss_per_megabyte = 0.0;
      topo.add_node(p);
    }
    network.emplace(sim, std::move(topo), net::NetworkConfig{});
    fabric.emplace(*network);
  }
  sim::Simulator sim;
  std::optional<net::Network> network;
  std::optional<TransportFabric> fabric;
};

RetryPolicy jittered_retry(double jitter) {
  RetryPolicy p;
  p.initial_timeout = 1.0;
  p.backoff = 1.5;
  p.max_attempts = 4;
  p.jitter = jitter;
  return p;
}

/// Exhausts all four attempts against a dead node and reports the
/// total elapsed time (the sum of the four, possibly jittered, waits).
Seconds exhaust_retries(World& w, NodeId from, double jitter) {
  Endpoint& client = w.fabric->attach(from);
  ReliableChannel req(client, MessageType::kChat, MessageType::kChatAck,
                      jittered_retry(jitter));
  std::optional<RequestOutcome> outcome;
  req.request(NodeId(2), 1, 0, [&](const RequestOutcome& o) { outcome = o; });
  w.sim.run();
  EXPECT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_EQ(outcome->attempts, 4);
  return outcome->elapsed;
}

TEST(RetryJitter, ZeroJitterKeepsTheExactHistoricalSchedule) {
  World w;
  // 1 + 1.5 + 2.25 + 3.375: the schedule the whole repo calibrates to.
  EXPECT_NEAR(exhaust_retries(w, NodeId(1), 0.0), 8.125, 1e-9);
}

TEST(RetryJitter, JitteredWaitsStayWithinTheConfiguredBand) {
  World w;
  const Seconds elapsed = exhaust_retries(w, NodeId(1), 0.25);
  // Every wait scales by a factor in [0.75, 1.25).
  EXPECT_GE(elapsed, 0.75 * 8.125);
  EXPECT_LT(elapsed, 1.25 * 8.125);
}

TEST(RetryJitter, JitterIsDeterministicPerSeed) {
  World a(3);
  World b(3);
  EXPECT_DOUBLE_EQ(exhaust_retries(a, NodeId(1), 0.25),
                   exhaust_retries(b, NodeId(1), 0.25));
}

TEST(RetryJitter, DifferentEndpointsDesynchronize) {
  // Two clients hammering the same dead server with identical policies:
  // without jitter they retry in lock-step; with jitter the per-node
  // salt spreads their schedules apart.
  World lockstep;
  const Seconds t1 = exhaust_retries(lockstep, NodeId(1), 0.0);
  World lockstep2;
  const Seconds t2 = exhaust_retries(lockstep2, NodeId(3), 0.0);
  EXPECT_DOUBLE_EQ(t1, t2);

  World spread;
  const Seconds j1 = exhaust_retries(spread, NodeId(1), 0.25);
  World spread2;
  const Seconds j2 = exhaust_retries(spread2, NodeId(3), 0.25);
  EXPECT_NE(j1, j2);
}

TEST(RetryJitter, JitteredRequestsStillCompleteAgainstALiveServer) {
  World w;
  Endpoint& client = w.fabric->attach(NodeId(1));
  Endpoint& server = w.fabric->attach(NodeId(2));
  ReliableChannel req(client, MessageType::kChat, MessageType::kChatAck,
                      jittered_retry(0.25));
  ReliableChannel resp(server, MessageType::kChat, MessageType::kChatAck,
                       jittered_retry(0.25));
  resp.serve([&](const Message& m) { server.reply(m, MessageType::kChatAck, m.arg); });
  int completions = 0;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    req.request(NodeId(2), i, 0, [&](const RequestOutcome& o) {
      EXPECT_TRUE(o.ok);
      ++completions;
    });
  }
  w.sim.run();
  EXPECT_EQ(completions, 10);
}

TEST(RetryJitter, RejectsOutOfRangeJitter) {
  World w;
  Endpoint& client = w.fabric->attach(NodeId(1));
  RetryPolicy bad = jittered_retry(1.0);  // factor could hit 0: never legal
  EXPECT_THROW(ReliableChannel(client, MessageType::kChat, MessageType::kChatAck, bad),
               InvariantError);
  bad = jittered_retry(-0.1);
  EXPECT_THROW(ReliableChannel(client, MessageType::kChat, MessageType::kChatAck, bad),
               InvariantError);
}

}  // namespace
}  // namespace peerlab::transport
