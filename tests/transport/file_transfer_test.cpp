#include "peerlab/transport/file_transfer.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "peerlab/common/check.hpp"

namespace peerlab::transport {
namespace {

struct WorldConfig {
  double loss_per_megabyte = 0.0;
  double datagram_loss = 0.0;
  Seconds receiver_control_delay = 0.05;
  std::uint64_t seed = 1;
};

struct World {
  explicit World(WorldConfig wc = {}) : sim(wc.seed) {
    net::Topology topo(sim.rng().fork(1));
    net::NodeProfile sender;
    sender.hostname = "sender";
    sender.uplink_mbps = 8.0;
    sender.downlink_mbps = 8.0;
    sender.control_delay_mean = 0.01;
    sender.control_delay_sigma = 0.0;
    sender.loss_per_megabyte = 0.0;
    topo.add_node(sender);
    net::NodeProfile receiver;
    receiver.hostname = "receiver";
    receiver.uplink_mbps = 8.0;
    receiver.downlink_mbps = 8.0;
    receiver.control_delay_mean = wc.receiver_control_delay;
    receiver.control_delay_sigma = 0.0;
    receiver.loss_per_megabyte = wc.loss_per_megabyte;
    topo.add_node(receiver);
    net::NetworkConfig cfg;
    cfg.datagram_loss = wc.datagram_loss;
    network.emplace(sim, std::move(topo), cfg);
    fabric.emplace(*network);
    sender_peer.emplace(fabric->attach(NodeId(1)), directory);
    receiver_peer.emplace(fabric->attach(NodeId(2)), directory);
  }

  sim::Simulator sim;
  std::optional<net::Network> network;
  std::optional<TransportFabric> fabric;
  FileTransferDirectory directory;
  std::optional<FileTransferPeer> sender_peer;
  std::optional<FileTransferPeer> receiver_peer;
};

FileTransferConfig small_file(int parts = 1) {
  FileTransferConfig c;
  c.file_size = megabytes(1.0);
  c.parts = parts;
  c.petition_retry.initial_timeout = 5.0;
  return c;
}

TEST(FileTransfer, SinglePartTransferCompletes) {
  World w;
  std::optional<TransferResult> result;
  w.sender_peer->send_file(NodeId(2), small_file(), [&](const TransferResult& r) { result = r; });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);
  ASSERT_EQ(result->parts.size(), 1u);
  EXPECT_EQ(result->parts[0].attempts, 1);
  EXPECT_EQ(result->parts[0].size, megabytes(1.0));
  // 1 MB at 8 Mbit/s is 1 s of wire time plus handshakes.
  EXPECT_GT(result->total_time(), 1.0);
  EXPECT_LT(result->total_time(), 2.0);
}

TEST(FileTransfer, PetitionTimeReflectsReceiverResponsiveness) {
  World slow(WorldConfig{.receiver_control_delay = 2.0});
  std::optional<TransferResult> result;
  auto cfg = small_file();
  cfg.petition_retry.initial_timeout = 30.0;
  slow.sender_peer->send_file(NodeId(2), cfg, [&](const TransferResult& r) { result = r; });
  slow.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);
  // One-way petition receipt: propagation + ~2 s control delay.
  EXPECT_NEAR(result->petition_time(), 2.0, 0.2);
  // The ack adds the sender-side control hop on top.
  EXPECT_GT(result->petition_acked - result->petition_sent, result->petition_time());
}

TEST(FileTransfer, PartsAreSequentialAndConfirmed) {
  World w;
  std::optional<TransferResult> result;
  auto cfg = small_file(4);
  w.sender_peer->send_file(NodeId(2), cfg, [&](const TransferResult& r) { result = r; });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);
  ASSERT_EQ(result->parts.size(), 4u);
  Seconds prev_confirm = 0.0;
  for (int i = 0; i < 4; ++i) {
    const PartRecord& p = result->parts[static_cast<std::size_t>(i)];
    EXPECT_EQ(p.index, i);
    EXPECT_EQ(p.size, megabytes(0.25));
    EXPECT_GE(p.data_started, prev_confirm);  // next part waits for confirm
    EXPECT_GT(p.data_completed, p.data_started);
    EXPECT_GT(p.confirmed, p.data_completed);
    prev_confirm = p.confirmed;
  }
  EXPECT_EQ(w.receiver_peer->parts_received(), 4u);
  EXPECT_EQ(w.receiver_peer->petitions_received(), 1u);
}

TEST(FileTransfer, UnevenSplitGivesRemainderToLastPart) {
  World w;
  std::optional<TransferResult> result;
  FileTransferConfig cfg;
  cfg.file_size = megabytes(1.0) + 1;  // indivisible by 3
  cfg.parts = 3;
  w.sender_peer->send_file(NodeId(2), cfg, [&](const TransferResult& r) { result = r; });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->parts.size(), 3u);
  Bytes total = 0;
  for (const auto& p : result->parts) total += p.size;
  EXPECT_EQ(total, cfg.file_size);
  EXPECT_GE(result->parts[2].size, result->parts[0].size);
}

TEST(FileTransfer, LostPartsAreRetransmitted) {
  WorldConfig wc;
  wc.loss_per_megabyte = 0.3;  // 1 MB part survives with p ~ 0.7
  wc.seed = 5;
  World w(wc);
  std::optional<TransferResult> result;
  auto cfg = small_file(1);
  cfg.max_part_attempts = 50;
  w.sender_peer->send_file(NodeId(2), cfg, [&](const TransferResult& r) { result = r; });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(w.receiver_peer->parts_received(), 1u);
}

TEST(FileTransfer, RetransmissionLimitFailsTheTransfer) {
  WorldConfig wc;
  wc.loss_per_megabyte = 0.999;  // essentially nothing gets through
  World w(wc);
  std::optional<TransferResult> result;
  auto cfg = small_file(1);
  cfg.max_part_attempts = 3;
  w.sender_peer->send_file(NodeId(2), cfg, [&](const TransferResult& r) { result = r; });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete);
  EXPECT_STREQ(result->failure, "part retransmission limit");
  ASSERT_EQ(result->parts.size(), 1u);
  EXPECT_EQ(result->parts[0].attempts, 3);
}

TEST(FileTransfer, MissingReceiverSoftwareFailsCleanly) {
  World w;
  w.receiver_peer.reset();  // peer daemon down
  std::optional<TransferResult> result;
  auto cfg = small_file();
  cfg.petition_retry.initial_timeout = 0.5;
  cfg.petition_retry.max_attempts = 2;
  w.sender_peer->send_file(NodeId(2), cfg, [&](const TransferResult& r) { result = r; });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete);
  EXPECT_STREQ(result->failure, "petition unanswered");
  EXPECT_EQ(result->petition_attempts, 2);
}

TEST(FileTransfer, LostConfirmIsRecoveredByQuery) {
  WorldConfig wc;
  wc.datagram_loss = 0.35;
  wc.seed = 11;
  World w(wc);
  int completed = 0;
  constexpr int kTransfers = 10;
  auto cfg = small_file(4);
  cfg.petition_retry.initial_timeout = 2.0;
  cfg.petition_retry.max_attempts = 20;
  cfg.confirm_timeout = 2.0;
  cfg.max_confirm_queries = 30;
  for (int i = 0; i < kTransfers; ++i) {
    w.sim.schedule(static_cast<double>(i) * 60.0, [&, cfg] {
      w.sender_peer->send_file(NodeId(2), cfg, [&](const TransferResult& r) {
        completed += r.complete ? 1 : 0;
      });
    });
  }
  w.sim.run();
  EXPECT_EQ(completed, kTransfers);
}

TEST(FileTransfer, CancelSuppressesCompletionAndStopsTraffic) {
  World w;
  std::optional<TransferResult> result;
  auto cfg = small_file(4);
  const TransferId id =
      w.sender_peer->send_file(NodeId(2), cfg, [&](const TransferResult& r) { result = r; });
  w.sim.schedule(0.5, [&] { w.sender_peer->cancel(id); });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete);
  EXPECT_STREQ(result->failure, "cancelled by sender");
  EXPECT_EQ(w.sender_peer->active_outgoing(), 0u);
}

TEST(FileTransfer, CancelUnknownIdIsNoOp) {
  World w;
  w.sender_peer->cancel(TransferId(999));
  SUCCEED();
}

TEST(FileTransfer, LastMbTimeScalesWithRate) {
  World w;
  std::optional<TransferResult> result;
  FileTransferConfig cfg;
  cfg.file_size = megabytes(4.0);
  cfg.parts = 1;
  w.sender_peer->send_file(NodeId(2), cfg, [&](const TransferResult& r) { result = r; });
  w.sim.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->complete);
  // 4 MB message: degradation factor ~ 1/(1 + 0.5^1.2) ~ 0.7, so the
  // last MB takes roughly a quarter of the elapsed transfer.
  const Seconds elapsed = result->parts[0].data_completed - result->parts[0].data_started;
  EXPECT_NEAR(result->last_mb_time(), elapsed / 4.0, 0.05);
}

TEST(FileTransfer, SixteenPartsBeatWholeFile) {
  auto run = [](int parts) {
    World w;
    std::optional<TransferResult> result;
    FileTransferConfig cfg;
    cfg.file_size = megabytes(100.0);
    cfg.parts = parts;
    cfg.confirm_timeout = 120.0;
    w.sender_peer->send_file(NodeId(2), cfg, [&](const TransferResult& r) { result = r; });
    w.sim.run();
    EXPECT_TRUE(result.has_value() && result->complete);
    return result->transmission_time();
  };
  const Seconds whole = run(1);
  const Seconds four = run(4);
  const Seconds sixteen = run(16);
  EXPECT_GT(whole, four);
  EXPECT_GT(four, sixteen);
  EXPECT_GT(whole / sixteen, 5.0);
}

TEST(FileTransfer, ConcurrentTransfersFromOneSenderShareTheUplink) {
  World w;
  // Third node so the two transfers have distinct receivers.
  // (Rebuild the world manually with three nodes.)
  sim::Simulator sim(3);
  net::Topology topo(sim.rng().fork(1));
  for (const char* name : {"src", "d1", "d2"}) {
    net::NodeProfile p;
    p.hostname = name;
    p.uplink_mbps = 8.0;
    p.downlink_mbps = 8.0;
    p.control_delay_mean = 0.01;
    p.control_delay_sigma = 0.0;
    p.loss_per_megabyte = 0.0;
    topo.add_node(p);
  }
  net::NetworkConfig cfg;
  cfg.datagram_loss = 0.0;
  net::Network network(sim, std::move(topo), cfg);
  TransportFabric fabric(network);
  FileTransferDirectory dir;
  FileTransferPeer src(fabric.attach(NodeId(1)), dir);
  FileTransferPeer d1(fabric.attach(NodeId(2)), dir);
  FileTransferPeer d2(fabric.attach(NodeId(3)), dir);

  FileTransferConfig ft;
  ft.file_size = megabytes(2.0);
  ft.parts = 1;
  int done = 0;
  Seconds longest = 0.0;
  for (const auto dst : {NodeId(2), NodeId(3)}) {
    src.send_file(dst, ft, [&](const TransferResult& r) {
      EXPECT_TRUE(r.complete);
      ++done;
      longest = std::max(longest, r.transmission_time());
    });
  }
  sim.run();
  EXPECT_EQ(done, 2);
  // Alone: 2 MB at 8 Mbit/s = 2 s. Sharing: ~4 s.
  EXPECT_GT(longest, 3.0);
}

TEST(FileTransfer, RejectsDegenerateConfigs) {
  World w;
  FileTransferConfig cfg;
  cfg.file_size = 0;
  EXPECT_THROW(w.sender_peer->send_file(NodeId(2), cfg, [](const TransferResult&) {}),
               InvariantError);
  cfg.file_size = megabytes(1.0);
  cfg.parts = 0;
  EXPECT_THROW(w.sender_peer->send_file(NodeId(2), cfg, [](const TransferResult&) {}),
               InvariantError);
  cfg.parts = 1;
  EXPECT_THROW(w.sender_peer->send_file(NodeId(1), cfg, [](const TransferResult&) {}),
               InvariantError);  // self-transfer
}

TEST(FileTransfer, CorrelationEncodingIsUniqueAcrossNodesAndTransfers) {
  const auto c1 = make_correlation(NodeId(1), TransferId(1));
  const auto c2 = make_correlation(NodeId(1), TransferId(2));
  const auto c3 = make_correlation(NodeId(2), TransferId(1));
  EXPECT_NE(c1, c2);
  EXPECT_NE(c1, c3);
  EXPECT_NE(c2, c3);
}

}  // namespace
}  // namespace peerlab::transport
