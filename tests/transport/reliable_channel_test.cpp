#include "peerlab/transport/reliable_channel.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

namespace peerlab::transport {
namespace {

struct World {
  explicit World(double datagram_loss = 0.0, std::uint64_t seed = 1) : sim(seed) {
    net::Topology topo(sim.rng().fork(1));
    for (const char* name : {"client", "server", "spare"}) {
      net::NodeProfile p;
      p.hostname = name;
      p.control_delay_mean = 0.05;
      p.control_delay_sigma = 0.0;
      p.loss_per_megabyte = 0.0;
      topo.add_node(p);
    }
    net::NetworkConfig cfg;
    cfg.datagram_loss = datagram_loss;
    network.emplace(sim, std::move(topo), cfg);
    fabric.emplace(*network);
  }
  sim::Simulator sim;
  std::optional<net::Network> network;
  std::optional<TransportFabric> fabric;
};

RetryPolicy fast_retry() {
  RetryPolicy p;
  p.initial_timeout = 1.0;
  p.backoff = 1.5;
  p.max_attempts = 4;
  return p;
}

TEST(ReliableChannel, CompletesRoundTripOnCleanNetwork) {
  World w;
  Endpoint& client = w.fabric->attach(NodeId(1));
  Endpoint& server = w.fabric->attach(NodeId(2));
  ReliableChannel req(client, MessageType::kChat, MessageType::kChatAck, fast_retry());
  ReliableChannel resp(server, MessageType::kChat, MessageType::kChatAck, fast_retry());
  resp.serve([&](const Message& m) { server.reply(m, MessageType::kChatAck, m.arg * 2); });

  std::optional<RequestOutcome> outcome;
  req.request(NodeId(2), 42, 21, [&](const RequestOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok);
  EXPECT_EQ(outcome->attempts, 1);
  EXPECT_EQ(outcome->response.arg, 42);
  EXPECT_EQ(outcome->response.correlation, 42u);
  EXPECT_GT(outcome->elapsed, 0.09);  // two control hops
  EXPECT_LT(outcome->elapsed, 0.5);
  EXPECT_EQ(req.retransmissions(), 0u);
  EXPECT_EQ(req.outstanding(), 0u);
}

TEST(ReliableChannel, RetriesThroughLossAndSucceeds) {
  World w(/*datagram_loss=*/0.4, /*seed=*/7);
  Endpoint& client = w.fabric->attach(NodeId(1));
  Endpoint& server = w.fabric->attach(NodeId(2));
  RetryPolicy policy = fast_retry();
  policy.max_attempts = 20;
  ReliableChannel req(client, MessageType::kChat, MessageType::kChatAck, policy);
  ReliableChannel resp(server, MessageType::kChat, MessageType::kChatAck, policy);
  int served = 0;
  resp.serve([&](const Message& m) {
    ++served;
    server.reply(m, MessageType::kChatAck);
  });

  int ok = 0, failed = 0;
  constexpr int kRequests = 50;
  for (int i = 0; i < kRequests; ++i) {
    req.request(NodeId(2), static_cast<std::uint64_t>(i), 0,
                [&](const RequestOutcome& o) { o.ok ? ++ok : ++failed; });
  }
  w.sim.run();
  EXPECT_EQ(ok, kRequests);  // 20 attempts at 40% loss: failure is negligible
  EXPECT_EQ(failed, 0);
  EXPECT_GT(req.retransmissions(), 0u);
  EXPECT_GE(served, kRequests);
}

TEST(ReliableChannel, ExhaustedRetriesReportFailure) {
  World w;
  Endpoint& client = w.fabric->attach(NodeId(1));
  // No server software at all: every attempt times out.
  ReliableChannel req(client, MessageType::kChat, MessageType::kChatAck, fast_retry());
  std::optional<RequestOutcome> outcome;
  req.request(NodeId(2), 1, 0, [&](const RequestOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok);
  EXPECT_EQ(outcome->attempts, 4);
  // Backoff: 1 + 1.5 + 2.25 + 3.375 = 8.125 s total.
  EXPECT_NEAR(outcome->elapsed, 8.125, 0.01);
}

TEST(ReliableChannel, BackoffGrowsTimeouts) {
  World w;
  Endpoint& client = w.fabric->attach(NodeId(1));
  ReliableChannel req(client, MessageType::kChat, MessageType::kChatAck, fast_retry());
  bool done = false;
  req.request(NodeId(2), 1, 0, [&](const RequestOutcome&) { done = true; });
  w.sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(w.sim.now(), 8.125, 0.01);
}

TEST(ReliableChannel, ConcurrentRequestsAreMatchedBySeq) {
  World w;
  Endpoint& client = w.fabric->attach(NodeId(1));
  Endpoint& server = w.fabric->attach(NodeId(2));
  ReliableChannel req(client, MessageType::kChat, MessageType::kChatAck, fast_retry());
  ReliableChannel resp(server, MessageType::kChat, MessageType::kChatAck, fast_retry());
  resp.serve([&](const Message& m) {
    server.reply(m, MessageType::kChatAck, static_cast<std::int64_t>(m.correlation));
  });

  std::vector<std::pair<std::uint64_t, std::int64_t>> results;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    req.request(NodeId(2), i, 0, [&, i](const RequestOutcome& o) {
      ASSERT_TRUE(o.ok);
      results.emplace_back(i, o.response.arg);
    });
  }
  w.sim.run();
  ASSERT_EQ(results.size(), 10u);
  for (const auto& [corr, echoed] : results) {
    EXPECT_EQ(static_cast<std::int64_t>(corr), echoed);
  }
}

TEST(ReliableChannel, SlowResponderIsNotRetriedPrematurely) {
  World w;
  Endpoint& client = w.fabric->attach(NodeId(1));
  Endpoint& server = w.fabric->attach(NodeId(2));
  RetryPolicy patient;
  patient.initial_timeout = 5.0;
  patient.max_attempts = 2;
  ReliableChannel req(client, MessageType::kChat, MessageType::kChatAck, patient);
  ReliableChannel resp(server, MessageType::kChat, MessageType::kChatAck, patient);
  int served = 0;
  resp.serve([&](const Message& m) {
    ++served;
    server.reply(m, MessageType::kChatAck);
  });
  std::optional<RequestOutcome> outcome;
  req.request(NodeId(2), 1, 0, [&](const RequestOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok);
  EXPECT_EQ(outcome->attempts, 1);
  EXPECT_EQ(served, 1);
}

TEST(ReliableChannel, DuplicateResponsesAreDropped) {
  World w;
  Endpoint& client = w.fabric->attach(NodeId(1));
  Endpoint& server = w.fabric->attach(NodeId(2));
  ReliableChannel req(client, MessageType::kChat, MessageType::kChatAck, fast_retry());
  ReliableChannel resp(server, MessageType::kChat, MessageType::kChatAck, fast_retry());
  resp.serve([&](const Message& m) {
    // Reply twice: the second must be ignored by the requester.
    server.reply(m, MessageType::kChatAck);
    server.reply(m, MessageType::kChatAck);
  });
  int completions = 0;
  req.request(NodeId(2), 1, 0, [&](const RequestOutcome&) { ++completions; });
  w.sim.run();
  EXPECT_EQ(completions, 1);
}

TEST(ReliableChannel, FailPendingToFailsOnlyThatDestination) {
  World w;
  Endpoint& client = w.fabric->attach(NodeId(1));
  // No responders anywhere: requests sit in the retry loop.
  ReliableChannel req(client, MessageType::kChat, MessageType::kChatAck, fast_retry());
  int failed_to_2 = 0;
  req.request(NodeId(2), 1, 0, [&](const RequestOutcome& o) { failed_to_2 += !o.ok; });
  req.request(NodeId(2), 2, 0, [&](const RequestOutcome& o) { failed_to_2 += !o.ok; });
  std::optional<RequestOutcome> spare;
  req.request(NodeId(3), 3, 0, [&](const RequestOutcome& o) { spare = o; });
  EXPECT_EQ(req.outstanding(), 3u);

  // Fails the node-2 requests now (synchronously); node 3 is untouched.
  EXPECT_EQ(req.fail_pending_to(NodeId(2)), 2u);
  EXPECT_EQ(failed_to_2, 2);
  EXPECT_FALSE(spare.has_value());
  EXPECT_EQ(req.outstanding(), 1u);

  w.sim.run();  // the node-3 request still exhausts its retries normally
  ASSERT_TRUE(spare.has_value());
  EXPECT_FALSE(spare->ok);
  EXPECT_EQ(spare->attempts, 4);
  EXPECT_EQ(req.outstanding(), 0u);
}

TEST(ReliableChannel, FailPendingToSupportsReentrantReissue) {
  World w;
  Endpoint& client = w.fabric->attach(NodeId(1));
  Endpoint& server = w.fabric->attach(NodeId(3));
  ReliableChannel req(client, MessageType::kChat, MessageType::kChatAck, fast_retry());
  ReliableChannel resp(server, MessageType::kChat, MessageType::kChatAck, fast_retry());
  resp.serve([&](const Message& m) { server.reply(m, MessageType::kChatAck); });

  // The failure callback re-issues against a live node from inside
  // fail_pending_to — the sweep must not visit the new request.
  std::optional<RequestOutcome> reissued;
  req.request(NodeId(2), 7, 0, [&](const RequestOutcome& o) {
    ASSERT_FALSE(o.ok);
    req.request(NodeId(3), 7, 0, [&](const RequestOutcome& o2) { reissued = o2; });
  });
  EXPECT_EQ(req.fail_pending_to(NodeId(2)), 1u);
  EXPECT_EQ(req.outstanding(), 1u);  // the re-issued request survived the sweep
  w.sim.run();
  ASSERT_TRUE(reissued.has_value());
  EXPECT_TRUE(reissued->ok);
}

TEST(ReliableChannel, RejectsDegeneratePolicies) {
  World w;
  Endpoint& client = w.fabric->attach(NodeId(1));
  RetryPolicy bad;
  bad.initial_timeout = 0.0;
  EXPECT_THROW(ReliableChannel(client, MessageType::kChat, MessageType::kChatAck, bad),
               InvariantError);
  bad = RetryPolicy{};
  bad.backoff = 0.5;
  EXPECT_THROW(ReliableChannel(client, MessageType::kChat, MessageType::kChatAck, bad),
               InvariantError);
  bad = RetryPolicy{};
  bad.max_attempts = 0;
  EXPECT_THROW(ReliableChannel(client, MessageType::kChat, MessageType::kChatAck, bad),
               InvariantError);
}

}  // namespace
}  // namespace peerlab::transport
